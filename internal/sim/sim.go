// Package sim simulates molecular sequence evolution down a
// phylogenetic tree under the package model substitution models — the
// role INDELible plays in the paper's §4.3 experiments (indels are not
// needed there: the paper simulates aligned data of chosen width, which
// is exactly what Evolve produces). Combined with tree.YuleTree it
// generates the parametric datasets behind Figures 2-5.
package sim

import (
	"fmt"
	"math/rand"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/tree"
)

// Evolve simulates an alignment of the given width down tr under m:
// every site draws a rate category uniformly (the discrete-Γ model),
// the root state from the equilibrium frequencies, and each branch
// applies the transition matrix P(rate·length). The returned alignment
// has one row per tip, in tip-index order.
func Evolve(tr *tree.Tree, m *model.Model, sites int, rng *rand.Rand) (*bio.Alignment, error) {
	if sites <= 0 {
		return nil, fmt.Errorf("sim: non-positive site count %d", sites)
	}
	if err := tr.Check(); err != nil {
		return nil, fmt.Errorf("sim: invalid tree: %w", err)
	}
	k := m.States
	var alphabet *bio.Alphabet
	switch k {
	case 4:
		alphabet = bio.NewDNAAlphabet()
	case 20:
		alphabet = bio.NewAAAlphabet()
	default:
		return nil, fmt.Errorf("sim: no alphabet for %d states", k)
	}

	// Per-site rate categories; -1 marks invariant sites (+I component).
	cats := make([]int, sites)
	for i := range cats {
		if m.PInv > 0 && rng.Float64() < m.PInv {
			cats[i] = -1
			continue
		}
		cats[i] = rng.Intn(m.Cats())
	}

	// Sequences per node, filled by pre-order propagation from the root.
	seqs := make([][]uint8, len(tr.Nodes))
	drawRoot := func() []uint8 {
		s := make([]uint8, sites)
		for i := range s {
			s[i] = drawState(m.Freqs, rng)
		}
		return s
	}

	pbuf := make([]float64, m.Cats()*k*k)
	propagate := func(parent, child *tree.Node, via *tree.Edge) {
		m.PMatrices(pbuf, via.Length)
		src := seqs[parent.Index]
		dst := make([]uint8, sites)
		for i := range dst {
			if cats[i] < 0 { // invariant site: inherited unchanged
				dst[i] = src[i]
				continue
			}
			row := pbuf[cats[i]*k*k+int(src[i])*k : cats[i]*k*k+(int(src[i])+1)*k]
			dst[i] = drawState(row, rng)
		}
		seqs[child.Index] = dst
	}

	var root *tree.Node
	if tr.NumTips == 2 {
		root = tr.Nodes[0]
	} else {
		root = tr.Nodes[tr.NumTips]
	}
	seqs[root.Index] = drawRoot()
	// Iterative pre-order.
	type frame struct{ node, from *tree.Node }
	stack := []frame{{root, nil}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range f.node.Adj {
			child := e.Other(f.node)
			if child == f.from {
				continue
			}
			propagate(f.node, child, e)
			stack = append(stack, frame{child, f.node})
		}
	}

	letters := "ACGT"
	if k == 20 {
		letters = "ARNDCQEGHILKMFPSTWYV"
	}
	out := bio.NewAlignment(alphabet)
	for ti := 0; ti < tr.NumTips; ti++ {
		buf := make([]byte, sites)
		for i, s := range seqs[ti] {
			buf[i] = letters[s]
		}
		if err := out.AddString(tr.Nodes[ti].Name, string(buf)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// drawState samples an index proportionally to the (sub-)stochastic
// weight vector w.
func drawState(w []float64, rng *rand.Rand) uint8 {
	total := 0.0
	for _, x := range w {
		total += x
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if u <= acc {
			return uint8(i)
		}
	}
	return uint8(len(w) - 1)
}

// Dataset bundles a simulated truth: the generating tree, model and the
// compressed alignment.
type Dataset struct {
	Tree     *tree.Tree
	Model    *model.Model
	Patterns *bio.Patterns
	// Alignment is the uncompressed simulated data.
	Alignment *bio.Alignment
}

// Config parameterises NewDataset.
type Config struct {
	// Taxa and Sites set the alignment dimensions.
	Taxa, Sites int
	// BirthRate is the Yule tree's speciation rate (default 1).
	BirthRate float64
	// Gamma enables a discrete-Γ(4) model with the given alpha; 0 means
	// rate homogeneity.
	GammaAlpha float64
	// Seed makes the dataset reproducible.
	Seed int64
	// AA switches to amino-acid simulation under the Poisson model.
	AA bool
	// Model, when non-nil, overrides the default generating model (it is
	// cloned first, so rate heterogeneity set here never mutates the
	// caller's copy). Use it to simulate under an empirical PAML matrix
	// instead of Poisson/HKY.
	Model *model.Model
}

// NewDataset simulates a full dataset: Yule tree (branch lengths scaled
// into a phylogenetically informative range), GTR-class model with
// mildly non-uniform frequencies, sequence evolution and pattern
// compression — the stand-in for the paper's real and INDELible-
// simulated inputs.
func NewDataset(cfg Config) (*Dataset, error) {
	if cfg.Taxa < 2 {
		return nil, fmt.Errorf("sim: need at least 2 taxa, got %d", cfg.Taxa)
	}
	if cfg.BirthRate == 0 {
		cfg.BirthRate = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr, err := tree.YuleTree(cfg.Taxa, cfg.BirthRate, rng, nil)
	if err != nil {
		return nil, err
	}
	// Rescale so the average branch length sits near 0.08 substitutions
	// per site — enough signal, not saturated.
	mean := tr.TotalLength() / float64(len(tr.Edges))
	scale := 0.08 / mean
	for _, e := range tr.Edges {
		e.Length *= scale
		if e.Length < tree.MinBranchLength {
			e.Length = tree.MinBranchLength
		}
	}

	var m *model.Model
	if cfg.Model != nil {
		m = cfg.Model.Clone()
	} else if cfg.AA {
		m, err = model.NewJC(20)
	} else {
		m, err = model.NewHKY([]float64{0.30, 0.20, 0.20, 0.30}, 2.5)
	}
	if err != nil {
		return nil, err
	}
	if cfg.GammaAlpha > 0 {
		if err := m.SetGamma(cfg.GammaAlpha, 4); err != nil {
			return nil, err
		}
	}
	aln, err := Evolve(tr, m, cfg.Sites, rng)
	if err != nil {
		return nil, err
	}
	pats, err := bio.Compress(aln)
	if err != nil {
		return nil, err
	}
	return &Dataset{Tree: tr, Model: m, Patterns: pats, Alignment: aln}, nil
}
