package sim

import (
	"math"
	"math/rand"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/plf"
	"oocphylo/internal/tree"
)

func TestEvolveDimensionsAndValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, err := tree.YuleTree(10, 1, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := model.NewJC(4)
	aln, err := Evolve(tr, m, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if aln.NumTaxa() != 10 || aln.NumSites() != 200 {
		t.Fatalf("dims %dx%d", aln.NumTaxa(), aln.NumSites())
	}
	if err := aln.Validate(); err != nil {
		t.Fatal(err)
	}
	// Row names must match tip names.
	for i := 0; i < tr.NumTips; i++ {
		if aln.Names[i] != tr.Nodes[i].Name {
			t.Fatalf("row %d name %q != tip %q", i, aln.Names[i], tr.Nodes[i].Name)
		}
	}
}

func TestEvolveEquilibriumFrequencies(t *testing.T) {
	// On long sequences the empirical frequencies approach the model's
	// equilibrium (the root draws from it and the chain preserves it).
	rng := rand.New(rand.NewSource(2))
	tr, _ := tree.YuleTree(6, 1, rng, nil)
	freqs := []float64{0.4, 0.3, 0.2, 0.1}
	m, err := model.NewHKY(freqs, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	aln, err := Evolve(tr, m, 60000, rng)
	if err != nil {
		t.Fatal(err)
	}
	pats, _ := bio.Compress(aln)
	got := pats.BaseFrequencies()
	for i := range freqs {
		if math.Abs(got[i]-freqs[i]) > 0.02 {
			t.Errorf("state %d frequency %v, want ~%v", i, got[i], freqs[i])
		}
	}
}

func TestEvolveTwoTaxaDistanceRecoverable(t *testing.T) {
	// Simulate a pair at a known distance; the ML estimate must be close.
	rng := rand.New(rand.NewSource(3))
	const trueLen = 0.35
	tr := tree.NewPair("x", "y", trueLen)
	m, _ := model.NewJC(4)
	aln, err := Evolve(tr, m, 50000, rng)
	if err != nil {
		t.Fatal(err)
	}
	pats, _ := bio.Compress(aln)
	est := tree.NewPair("x", "y", 0.1)
	prov := plf.NewInMemoryProvider(0, plf.VectorLength(m, pats.NumPatterns()))
	e, err := plf.New(est, pats, m, prov)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.OptimizeBranch(est.Edges[0]); err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Edges[0].Length-trueLen) > 0.03 {
		t.Errorf("estimated distance %v, want ~%v", est.Edges[0].Length, trueLen)
	}
}

func TestEvolveGammaRatesCreateHeterogeneity(t *testing.T) {
	// With a tiny alpha most sites are near-invariant and a few are
	// hypervariable; the variance of per-site mismatch counts must
	// exceed the homogeneous case.
	rng := rand.New(rand.NewSource(4))
	tr, _ := tree.YuleTree(12, 1, rng, nil)
	hom, _ := model.NewJC(4)
	het, _ := model.NewJC(4)
	_ = het.SetGamma(0.1, 4)
	varOf := func(m *model.Model) float64 {
		aln, err := Evolve(tr, m, 3000, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		// Per-site count of taxa differing from row 0.
		var mean, sq float64
		n := float64(aln.NumSites())
		for j := 0; j < aln.NumSites(); j++ {
			d := 0.0
			for i := 1; i < aln.NumTaxa(); i++ {
				if aln.Seqs[i][j] != aln.Seqs[0][j] {
					d++
				}
			}
			mean += d / n
			sq += d * d / n
		}
		return sq - mean*mean
	}
	vHom, vHet := varOf(hom), varOf(het)
	if vHet <= vHom {
		t.Errorf("gamma rates should increase site variance: hom %v, het %v", vHom, vHet)
	}
}

func TestEvolveErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr, _ := tree.YuleTree(4, 1, rng, nil)
	m, _ := model.NewJC(4)
	if _, err := Evolve(tr, m, 0, rng); err == nil {
		t.Error("zero sites must fail")
	}
	m3, _ := model.NewJC(3)
	if _, err := Evolve(tr, m3, 10, rng); err == nil {
		t.Error("3-state model has no alphabet; must fail")
	}
	broken, _ := tree.YuleTree(4, 1, rng, nil)
	broken.Edges[0].Length = -1
	if _, err := Evolve(broken, m, 10, rng); err == nil {
		t.Error("invalid tree must fail")
	}
}

func TestNewDatasetReproducible(t *testing.T) {
	a, err := NewDataset(Config{Taxa: 20, Sites: 100, GammaAlpha: 0.7, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDataset(Config{Taxa: 20, Sites: 100, GammaAlpha: 0.7, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if tree.RFDistance(a.Tree, b.Tree) != 0 {
		t.Error("same seed must give same tree")
	}
	if a.Patterns.NumPatterns() != b.Patterns.NumPatterns() {
		t.Error("same seed must give same patterns")
	}
	for i := range a.Alignment.Seqs {
		if a.Alignment.StringSeq(i) != b.Alignment.StringSeq(i) {
			t.Fatal("same seed must give identical sequences")
		}
	}
	c, err := NewDataset(Config{Taxa: 20, Sites: 100, GammaAlpha: 0.7, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Alignment.Seqs {
		if a.Alignment.StringSeq(i) != c.Alignment.StringSeq(i) {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestNewDatasetAAAndValidation(t *testing.T) {
	d, err := NewDataset(Config{Taxa: 6, Sites: 40, Seed: 9, AA: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Model.States != 20 || d.Patterns.Alphabet.States != 20 {
		t.Error("AA dataset should be 20-state")
	}
	if _, err := NewDataset(Config{Taxa: 1, Sites: 10}); err == nil {
		t.Error("one taxon must fail")
	}
}

func TestDatasetLikelihoodPipelineWorks(t *testing.T) {
	// End-to-end smoke: a simulated dataset scores higher on (a tree
	// near) the truth than on a random topology.
	d, err := NewDataset(Config{Taxa: 12, Sites: 400, GammaAlpha: 1.0, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	score := func(tr *tree.Tree) float64 {
		prov := plf.NewInMemoryProvider(tr.NumInner(), plf.VectorLength(d.Model, d.Patterns.NumPatterns()))
		e, err := plf.New(tr, d.Patterns, d.Model, prov)
		if err != nil {
			t.Fatal(err)
		}
		lnl, err := e.LogLikelihood()
		if err != nil {
			t.Fatal(err)
		}
		return lnl
	}
	truth := score(d.Tree.Clone())
	names := make([]string, d.Tree.NumTips)
	for i := range names {
		names[i] = d.Tree.Nodes[i].Name
	}
	random, err := tree.RandomTopology(names, rand.New(rand.NewSource(123)), 0.05, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if truth <= score(random) {
		t.Error("true tree should outscore a random topology")
	}
}
