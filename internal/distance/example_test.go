package distance_test

import (
	"fmt"

	"oocphylo/internal/bio"
	"oocphylo/internal/distance"
	"oocphylo/internal/tree"
)

func ExampleNeighborJoining() {
	// An exactly additive distance matrix: NJ recovers the tree exactly.
	m := &distance.Matrix{
		Names: []string{"a", "b", "c", "d"},
		D: []float64{
			0.0, 0.3, 0.6, 0.7,
			0.3, 0.0, 0.7, 0.8,
			0.6, 0.7, 0.0, 0.5,
			0.7, 0.8, 0.5, 0.0,
		},
	}
	t, err := distance.NeighborJoining(m)
	if err != nil {
		panic(err)
	}
	want, _ := tree.ParseNewick("((a:0.1,b:0.2):0.2,(c:0.2,d:0.3):0.1);")
	fmt.Println("taxa:", t.NumTips)
	fmt.Println("RF to the generating tree:", tree.RFDistance(t, want))
	fmt.Printf("total length: %.2f\n", t.TotalLength())
	// Output:
	// taxa: 4
	// RF to the generating tree: 0
	// total length: 1.10
}

func ExampleJC() {
	aln := bio.NewAlignment(bio.NewDNAAlphabet())
	_ = aln.AddString("s1", "AAAAAAAAAA")
	_ = aln.AddString("s2", "AAAAAAAAAC") // 10% observed divergence
	pats, _ := bio.Compress(aln)
	m, err := distance.JC(pats)
	if err != nil {
		panic(err)
	}
	fmt.Printf("JC-corrected distance: %.4f\n", m.At(0, 1))
	// Output:
	// JC-corrected distance: 0.1073
}
