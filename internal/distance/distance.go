// Package distance computes pairwise evolutionary distances between
// aligned sequences and reconstructs trees from them with the
// Neighbor-Joining algorithm of Saitou & Nei (1987, as corrected by
// Studier & Keppler 1988).
//
// NJ is the method the paper contrasts itself against in §2: previous
// external-memory phylogenetics targeted NJ's O(n²) distance matrix,
// whose access pattern (global minimum searches) is fundamentally
// different from the PLF's tree-induced vector accesses. Here NJ serves
// as the starting-tree builder for the ML search (a cheap, sensible
// alternative to random topologies) and as a self-contained
// reconstruction method in its own right.
package distance

import (
	"fmt"
	"math"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/plf"
	"oocphylo/internal/tree"
)

// maxDistance caps pairwise estimates where the correction formula
// diverges (saturated pairs).
const maxDistance = 5.0

// Matrix is a symmetric pairwise distance matrix with taxon labels.
type Matrix struct {
	// Names holds the taxon labels in matrix order.
	Names []string
	// D is the row-major n×n distance matrix; D[i*n+j] == D[j*n+i],
	// zero diagonal.
	D []float64
}

// N returns the number of taxa.
func (m *Matrix) N() int { return len(m.Names) }

// At returns the distance between taxa i and j.
func (m *Matrix) At(i, j int) float64 { return m.D[i*m.N()+j] }

// set assigns symmetrically.
func (m *Matrix) set(i, j int, v float64) {
	n := m.N()
	m.D[i*n+j] = v
	m.D[j*n+i] = v
}

// Check validates symmetry, zero diagonal and finite non-negative
// entries.
func (m *Matrix) Check() error {
	n := m.N()
	if len(m.D) != n*n {
		return fmt.Errorf("distance: matrix is %d entries for %d taxa", len(m.D), n)
	}
	for i := 0; i < n; i++ {
		if m.D[i*n+i] != 0 {
			return fmt.Errorf("distance: nonzero diagonal at %d", i)
		}
		for j := i + 1; j < n; j++ {
			a, b := m.D[i*n+j], m.D[j*n+i]
			if a != b {
				return fmt.Errorf("distance: asymmetry at (%d,%d): %v vs %v", i, j, a, b)
			}
			if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
				return fmt.Errorf("distance: invalid entry %v at (%d,%d)", a, i, j)
			}
		}
	}
	return nil
}

// JC computes Jukes-Cantor corrected distances: for observed mismatch
// fraction p over comparable (both-unambiguous) sites,
// d = -3/4·ln(1 - 4p/3). Saturated or incomparable pairs are capped at
// maxDistance. Works for DNA; for k-state data the generalised formula
// d = -(k-1)/k · ln(1 - k·p/(k-1)) is used.
func JC(pats *bio.Patterns) (*Matrix, error) {
	n := pats.NumTaxa()
	if n < 2 {
		return nil, fmt.Errorf("distance: need at least 2 taxa, got %d", n)
	}
	k := float64(pats.Alphabet.States)
	m := &Matrix{Names: append([]string(nil), pats.Names...), D: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var diff, comp float64
			for p, w := range pats.Weights {
				a, b := pats.Columns[i][p], pats.Columns[j][p]
				if pats.Alphabet.IsAmbiguous(a) || pats.Alphabet.IsAmbiguous(b) {
					continue
				}
				comp += float64(w)
				if a != b {
					diff += float64(w)
				}
			}
			d := maxDistance
			if comp > 0 {
				pHat := diff / comp
				arg := 1 - k/(k-1)*pHat
				if arg > 1e-12 {
					d = -(k - 1) / k * math.Log(arg)
					if d > maxDistance {
						d = maxDistance
					}
					if d < 0 {
						d = 0
					}
				}
			}
			m.set(i, j, d)
		}
	}
	return m, nil
}

// ML computes maximum-likelihood pairwise distances under an arbitrary
// model by Newton-optimising the two-taxon likelihood for every pair —
// exact but O(n²) engine constructions; intended for moderate n.
func ML(pats *bio.Patterns, mdl *model.Model) (*Matrix, error) {
	n := pats.NumTaxa()
	if n < 2 {
		return nil, fmt.Errorf("distance: need at least 2 taxa, got %d", n)
	}
	m := &Matrix{Names: append([]string(nil), pats.Names...), D: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d, err := mlPairDistance(pats, mdl, i, j)
			if err != nil {
				return nil, fmt.Errorf("distance: pair (%s, %s): %w", pats.Names[i], pats.Names[j], err)
			}
			m.set(i, j, d)
		}
	}
	return m, nil
}

func mlPairDistance(pats *bio.Patterns, mdl *model.Model, i, j int) (float64, error) {
	// Build a two-taxon sub-alignment (re-compressed to merge patterns
	// that coincide once other taxa are dropped).
	sub := bio.NewAlignment(pats.Alphabet)
	expand := func(row int) []bio.StateMask {
		out := make([]bio.StateMask, 0, pats.TotalSites())
		for p, w := range pats.Weights {
			for r := 0; r < w; r++ {
				out = append(out, pats.Columns[row][p])
			}
		}
		return out
	}
	if err := sub.AddEncoded(pats.Names[i], expand(i)); err != nil {
		return 0, err
	}
	if err := sub.AddEncoded(pats.Names[j], expand(j)); err != nil {
		return 0, err
	}
	spats, err := bio.Compress(sub)
	if err != nil {
		return 0, err
	}
	pair := tree.NewPair(pats.Names[i], pats.Names[j], 0.1)
	prov := plf.NewInMemoryProvider(0, plf.VectorLength(mdl, spats.NumPatterns()))
	e, err := plf.New(pair, spats, mdl, prov)
	if err != nil {
		return 0, err
	}
	if _, err := e.OptimizeBranch(pair.Edges[0]); err != nil {
		return 0, err
	}
	return pair.Edges[0].Length, nil
}

// NeighborJoining reconstructs an unrooted binary tree from a distance
// matrix. Negative branch-length estimates (possible with NJ) are
// clamped to tree.MinBranchLength. For an additive (tree-metric) input
// the true topology is recovered exactly.
func NeighborJoining(m *Matrix) (*tree.Tree, error) {
	if err := m.Check(); err != nil {
		return nil, err
	}
	n := m.N()
	switch n {
	case 2:
		return tree.NewPair(m.Names[0], m.Names[1], clampLen(m.At(0, 1))), nil
	case 3:
		// Solve the three-point formulas directly.
		a := (m.At(0, 1) + m.At(0, 2) - m.At(1, 2)) / 2
		b := (m.At(0, 1) + m.At(1, 2) - m.At(0, 2)) / 2
		c := (m.At(0, 2) + m.At(1, 2) - m.At(0, 1)) / 2
		return tree.NewTriplet(
			[3]string{m.Names[0], m.Names[1], m.Names[2]},
			[3]float64{clampLen(a), clampLen(b), clampLen(c)}), nil
	}

	// Working copies: cluster list and distance matrix shrink as pairs
	// join. Each active cluster carries the Newick fragment of its
	// rooted subtree (built bottom-up, emitted at the end).
	type cluster struct {
		frag string // Newick fragment without trailing length
	}
	act := make([]cluster, n)
	for i := range act {
		act[i] = cluster{frag: quote(m.Names[i])}
	}
	d := append([]float64(nil), m.D...)
	idx := make([]int, n) // active positions into d's original indexing
	for i := range idx {
		idx[i] = i
	}
	dist := func(a, b int) float64 { return d[idx[a]*n+idx[b]] }
	setDist := func(a, b int, v float64) {
		d[idx[a]*n+idx[b]] = v
		d[idx[b]*n+idx[a]] = v
	}

	r := len(act)
	for r > 3 {
		// Row sums.
		sums := make([]float64, r)
		for a := 0; a < r; a++ {
			s := 0.0
			for b := 0; b < r; b++ {
				if a != b {
					s += dist(a, b)
				}
			}
			sums[a] = s
		}
		// Minimise Q(a,b) = (r-2)·d(a,b) - sum(a) - sum(b).
		bi, bj, bq := -1, -1, math.Inf(1)
		for a := 0; a < r; a++ {
			for b := a + 1; b < r; b++ {
				q := float64(r-2)*dist(a, b) - sums[a] - sums[b]
				if q < bq {
					bi, bj, bq = a, b, q
				}
			}
		}
		// Branch lengths to the new internal node.
		dij := dist(bi, bj)
		la := dij/2 + (sums[bi]-sums[bj])/(2*float64(r-2))
		lb := dij - la
		la, lb = clampLen(la), clampLen(lb)
		// Distances from the new node u to every other cluster.
		newFrag := "(" + act[bi].frag + ":" + ftoa(la) + "," + act[bj].frag + ":" + ftoa(lb) + ")"
		for c := 0; c < r; c++ {
			if c == bi || c == bj {
				continue
			}
			duc := (dist(bi, c) + dist(bj, c) - dij) / 2
			if duc < 0 {
				duc = 0
			}
			setDist(bi, c, duc)
		}
		act[bi] = cluster{frag: newFrag}
		// Remove bj by swapping with the last active slot.
		act[bj] = act[r-1]
		idx[bj] = idx[r-1]
		r--
		act = act[:r]
		idx = idx[:r]
	}

	// Final three clusters join at the last internal node.
	l0 := (dist(0, 1) + dist(0, 2) - dist(1, 2)) / 2
	l1 := (dist(0, 1) + dist(1, 2) - dist(0, 2)) / 2
	l2 := (dist(0, 2) + dist(1, 2) - dist(0, 1)) / 2
	newick := "(" + act[0].frag + ":" + ftoa(clampLen(l0)) +
		"," + act[1].frag + ":" + ftoa(clampLen(l1)) +
		"," + act[2].frag + ":" + ftoa(clampLen(l2)) + ");"
	return tree.ParseNewick(newick)
}

func clampLen(v float64) float64 {
	if v < tree.MinBranchLength || math.IsNaN(v) {
		return tree.MinBranchLength
	}
	return v
}

func ftoa(v float64) string { return fmt.Sprintf("%g", v) }

func quote(name string) string {
	for i := 0; i < len(name); i++ {
		switch name[i] {
		case '(', ')', ':', ';', ',', ' ', '\t':
			return "'" + name + "'"
		}
	}
	return name
}

// NJTree is the one-call convenience: JC distances then NJ.
func NJTree(pats *bio.Patterns) (*tree.Tree, error) {
	m, err := JC(pats)
	if err != nil {
		return nil, err
	}
	return NeighborJoining(m)
}
