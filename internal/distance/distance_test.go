package distance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

func patsFrom(t *testing.T, rows map[string]string) *bio.Patterns {
	t.Helper()
	a := bio.NewAlignment(bio.NewDNAAlphabet())
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		if s, ok := rows[name]; ok {
			if err := a.AddString(name, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	p, err := bio.Compress(a)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestJCAnalytic(t *testing.T) {
	// 10 sites, 1 mismatch: p = 0.1, d = -3/4 ln(1 - 4/30).
	p := patsFrom(t, map[string]string{
		"a": "AAAAAAAAAA",
		"b": "AAAAAAAAAC",
	})
	m, err := JC(p)
	if err != nil {
		t.Fatal(err)
	}
	want := -0.75 * math.Log(1-4.0/30)
	if math.Abs(m.At(0, 1)-want) > 1e-12 {
		t.Errorf("JC distance = %v, want %v", m.At(0, 1), want)
	}
	if m.At(0, 0) != 0 || m.At(1, 0) != m.At(0, 1) {
		t.Error("matrix structure wrong")
	}
	if err := m.Check(); err != nil {
		t.Error(err)
	}
}

func TestJCSaturationAndGaps(t *testing.T) {
	// 75%+ mismatches: correction diverges, capped.
	p := patsFrom(t, map[string]string{
		"a": "AAAA",
		"b": "CCCC",
	})
	m, err := JC(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != maxDistance {
		t.Errorf("saturated pair should cap at %v, got %v", maxDistance, m.At(0, 1))
	}
	// All-gap comparisons cap too.
	p2 := patsFrom(t, map[string]string{
		"a": "AA--",
		"b": "--AA",
	})
	m2, err := JC(p2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.At(0, 1) != maxDistance {
		t.Errorf("incomparable pair should cap, got %v", m2.At(0, 1))
	}
	// Identical sequences: distance zero.
	p3 := patsFrom(t, map[string]string{
		"a": "ACGTACGT",
		"b": "ACGTACGT",
	})
	m3, _ := JC(p3)
	if m3.At(0, 1) != 0 {
		t.Errorf("identical pair distance = %v", m3.At(0, 1))
	}
}

func TestMLPairMatchesJCUnderJCModel(t *testing.T) {
	p := patsFrom(t, map[string]string{
		"a": "AAAAAAAAAAAAAAAAAAAC",
		"b": "AAAAAAAAAAAAAAAACCCC",
	})
	jc, err := JC(p)
	if err != nil {
		t.Fatal(err)
	}
	mdl, _ := model.NewJC(4)
	ml, err := ML(p, mdl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(jc.At(0, 1)-ml.At(0, 1)) > 1e-5 {
		t.Errorf("ML and analytic JC disagree: %v vs %v", ml.At(0, 1), jc.At(0, 1))
	}
}

// additiveMatrix builds the path-length distance matrix of a tree —
// an exactly additive metric.
func additiveMatrix(tr *tree.Tree) *Matrix {
	n := tr.NumTips
	m := &Matrix{Names: make([]string, n), D: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		m.Names[i] = tr.Nodes[i].Name
	}
	for i := 0; i < n; i++ {
		// BFS with accumulated branch lengths.
		distArr := make([]float64, len(tr.Nodes))
		seen := make([]bool, len(tr.Nodes))
		queue := []*tree.Node{tr.Nodes[i]}
		seen[i] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range cur.Adj {
				o := e.Other(cur)
				if !seen[o.Index] {
					seen[o.Index] = true
					distArr[o.Index] = distArr[cur.Index] + e.Length
					queue = append(queue, o)
				}
			}
		}
		// Mirror the upper triangle: BFS from i and from j can differ by
		// an ulp in summation order, and Matrix.Check is strict.
		for j := i + 1; j < n; j++ {
			m.D[i*n+j] = distArr[j]
			m.D[j*n+i] = distArr[j]
		}
	}
	return m
}

func TestNeighborJoiningRecoversAdditiveTreesProperty(t *testing.T) {
	// THE defining property of NJ: exact recovery from additive input.
	f := func(seed int64, nRaw uint8) bool {
		n := 4 + int(nRaw)%28
		names := make([]string, n)
		for i := range names {
			names[i] = "t" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		rng := rand.New(rand.NewSource(seed))
		truth, err := tree.RandomTopology(names, rng, 0.05, 0.6)
		if err != nil {
			return false
		}
		m := additiveMatrix(truth)
		got, err := NeighborJoining(m)
		if err != nil {
			return false
		}
		if got.Check() != nil {
			return false
		}
		if tree.RFDistance(got, truth) != 0 {
			return false
		}
		// Branch lengths recovered too (within clamping tolerance).
		return math.Abs(got.TotalLength()-truth.TotalLength()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNeighborJoiningSmallCases(t *testing.T) {
	m2 := &Matrix{Names: []string{"x", "y"}, D: []float64{0, 0.3, 0.3, 0}}
	tr, err := NeighborJoining(m2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTips != 2 || math.Abs(tr.Edges[0].Length-0.3) > 1e-12 {
		t.Error("two-taxon NJ wrong")
	}
	m3 := &Matrix{Names: []string{"x", "y", "z"},
		D: []float64{0, 0.3, 0.5, 0.3, 0, 0.4, 0.5, 0.4, 0}}
	tr3, err := NeighborJoining(m3)
	if err != nil {
		t.Fatal(err)
	}
	if tr3.NumTips != 3 {
		t.Fatal("three-taxon NJ wrong")
	}
	// Three-point solution: a=0.2, b=0.1, c=0.3.
	want := map[string]float64{"x": 0.2, "y": 0.1, "z": 0.3}
	for name, w := range want {
		tip := tr3.TipByName(name)
		if math.Abs(tip.Adj[0].Length-w) > 1e-12 {
			t.Errorf("tip %s length %v, want %v", name, tip.Adj[0].Length, w)
		}
	}
}

func TestNeighborJoiningRejectsBadMatrices(t *testing.T) {
	bad := &Matrix{Names: []string{"a", "b"}, D: []float64{0, 1, 2, 0}} // asymmetric
	if _, err := NeighborJoining(bad); err == nil {
		t.Error("asymmetric matrix must fail")
	}
	neg := &Matrix{Names: []string{"a", "b"}, D: []float64{0, -1, -1, 0}}
	if _, err := NeighborJoining(neg); err == nil {
		t.Error("negative distances must fail")
	}
	diag := &Matrix{Names: []string{"a", "b"}, D: []float64{1, 0, 0, 0}}
	if _, err := NeighborJoining(diag); err == nil {
		t.Error("nonzero diagonal must fail")
	}
}

func TestNJTreeOnSimulatedData(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 16, Sites: 4000, GammaAlpha: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	got, err := NJTree(d.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Check(); err != nil {
		t.Fatal(err)
	}
	if rf := tree.RFDistance(got, d.Tree); rf > 4 {
		t.Errorf("NJ tree RF=%d from truth on clean simulated data", rf)
	}
}

func TestNJHandlesAwkwardNames(t *testing.T) {
	a := bio.NewAlignment(bio.NewDNAAlphabet())
	_ = a.AddString("taxon one", "ACGTACGTAC")
	_ = a.AddString("t(2)", "ACGAACGAAC")
	_ = a.AddString("plain", "TTGTACGTAC")
	_ = a.AddString("x:y", "ACGTACGTTT")
	p, _ := bio.Compress(a)
	tr, err := NJTree(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"taxon one", "t(2)", "plain", "x:y"} {
		if tr.TipByName(want) == nil {
			t.Errorf("taxon %q lost", want)
		}
	}
}
