package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestSearchProgressRoundTrip(t *testing.T) {
	st := &State{
		Version: FormatVersion,
		Newick:  "((a:0.1,b:0.2):0.05,c:0.3,d:0.1);",
		States:  4,
		Freqs:   []float64{0.25, 0.25, 0.25, 0.25},
		Cats:    1,
		LnL:     -1234.56789012345,
		Round:   7,
		Search: &SearchProgress{
			StartLnL:     -1300.25,
			LastImproved: 6,
			MovesApplied: 14,
			MovesTested:  220,
			Alpha:        0.5125,
		},
	}
	path := filepath.Join(t.TempDir(), "v2.ckpt")
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Search == nil {
		t.Fatal("Search block lost through save/load")
	}
	if *loaded.Search != *st.Search {
		t.Errorf("Search block changed: %+v vs %+v", *loaded.Search, *st.Search)
	}
	// Bit-exact float round-trip is what the kill/resume soak leans on.
	if math.Float64bits(loaded.LnL) != math.Float64bits(st.LnL) {
		t.Errorf("LnL not bit-identical through JSON: %x vs %x",
			math.Float64bits(loaded.LnL), math.Float64bits(st.LnL))
	}
	if math.Float64bits(loaded.Search.StartLnL) != math.Float64bits(st.Search.StartLnL) {
		t.Error("Search.StartLnL not bit-identical through JSON")
	}
}

func TestLoadMigratesV1(t *testing.T) {
	// A literal v1 document, as PR 2's checkpoint code wrote it: no
	// search block, version 1.
	v1 := `{
  "version": 1,
  "newick": "((a:0.1,b:0.2):0.05,c:0.3,d:0.1);",
  "states": 4,
  "freqs": [0.25, 0.25, 0.25, 0.25],
  "cats": 1,
  "lnl": -999.5,
  "round": 4
}`
	path := filepath.Join(t.TempDir(), "v1.ckpt")
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != FormatVersion {
		t.Errorf("Version = %d after migration, want %d", st.Version, FormatVersion)
	}
	if st.Search != nil {
		t.Error("migrated v1 checkpoint invented a Search block")
	}
	if st.Round != 4 || st.LnL != -999.5 {
		t.Errorf("v1 fields lost: %+v", st)
	}
	// The migrated state restores like any v2 state.
	tr, m, err := st.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTips != 4 || m.States != 4 {
		t.Errorf("restored tree/model wrong: %d tips, %d states", tr.NumTips, m.States)
	}
}

func TestRestoreAcceptsBothVersions(t *testing.T) {
	base := State{
		Newick: "((a:0.1,b:0.2):0.05,c:0.3,d:0.1);",
		States: 4,
		Freqs:  []float64{0.25, 0.25, 0.25, 0.25},
		Cats:   1,
	}
	for _, v := range []int{1, FormatVersion} {
		st := base
		st.Version = v
		if _, _, err := st.Restore(); err != nil {
			t.Errorf("version %d rejected: %v", v, err)
		}
	}
	st := base
	st.Version = FormatVersion + 1
	if _, _, err := st.Restore(); err == nil {
		t.Errorf("future version %d accepted", st.Version)
	}
}

func TestCaptureWritesCurrentVersion(t *testing.T) {
	// Guards against forgetting to bump FormatVersion alongside schema
	// changes: Capture must stamp the constant, and the constant is 2
	// for the search-progress schema.
	if FormatVersion != 2 {
		t.Fatalf("FormatVersion = %d; update the migration tests alongside the schema", FormatVersion)
	}
}
