// Package checkpoint persists and restores the state of a running
// analysis: topology with branch lengths, full model parameterisation
// and progress metadata. The paper's closing claim — "given enough
// execution time and disk space, the out-of-core version can be
// deployed to essentially infer trees on datasets of arbitrary size"
// (§4.3) — implies runs long enough that surviving interruption
// matters; this package makes the search driver resumable.
//
// Checkpoints are JSON documents written atomically (temp file +
// rename), so a crash mid-write never corrupts the previous checkpoint.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"oocphylo/internal/model"
	"oocphylo/internal/ooc"
	"oocphylo/internal/tree"
)

// FormatVersion identifies the checkpoint schema. Version 2 added the
// Search block (exact-resume search progress); version 1 files are
// still read — Load migrates them in place (a v1 checkpoint simply
// has no search progress, so a resume from one restarts the round
// loop at State.Round with fresh counters).
const FormatVersion = 2

// SearchProgress carries the search-loop position needed for exact
// resume: everything search.Progress tracks beyond the tree and model
// themselves. Absent (nil) in v1 checkpoints and in checkpoints of
// non-search runs.
type SearchProgress struct {
	// StartLnL is the post-smoothing likelihood of the original
	// starting tree.
	StartLnL float64 `json:"start_lnl"`
	// LastImproved is the last round whose sweep improved the
	// likelihood by at least Epsilon.
	LastImproved int `json:"last_improved"`
	// MovesApplied and MovesTested are cumulative move counters.
	MovesApplied int `json:"moves_applied"`
	MovesTested  int `json:"moves_tested"`
	// Alpha is the last Γ shape the search optimised (0 = never); the
	// model's own alpha lives in State.Alpha.
	Alpha float64 `json:"alpha,omitempty"`
}

// State is everything needed to resume an analysis.
type State struct {
	// Version is the checkpoint schema version.
	Version int `json:"version"`
	// Newick holds the current tree with branch lengths.
	Newick string `json:"newick"`
	// States, Freqs, Exch, Alpha and Cats reconstruct the model.
	States int       `json:"states"`
	Freqs  []float64 `json:"freqs"`
	Exch   []float64 `json:"exch,omitempty"`
	Alpha  float64   `json:"alpha,omitempty"` // 0 = rate homogeneity
	// AlphaInf records the homogeneous-rates-over-Cats-categories
	// state (model Alpha == +Inf, which JSON cannot carry in Alpha):
	// Restore must still call SetGamma so Cats() — and with it the
	// provider vector length — round-trips.
	AlphaInf bool `json:"alpha_inf,omitempty"`
	Cats     int  `json:"cats"`
	// PInv is the +I proportion (0 = disabled).
	PInv float64 `json:"pinv,omitempty"`
	// LnL and Round record progress for reporting.
	LnL   float64 `json:"lnl"`
	Round int     `json:"round"`
	// Store describes the out-of-core backing file the run was using
	// (geometry, generation, checksum-of-checksums), so a resume can
	// validate the file instead of trusting it (nil when the run was
	// in-core or integrity checking was off).
	Store *ooc.Manifest `json:"store,omitempty"`
	// Search carries the search-loop position for exact resume (v2;
	// nil in migrated v1 checkpoints and non-search runs).
	Search *SearchProgress `json:"search,omitempty"`
	// Meta carries arbitrary driver annotations (dataset path, seed...).
	Meta map[string]string `json:"meta,omitempty"`
}

// Capture snapshots a live analysis into a State.
func Capture(t *tree.Tree, m *model.Model, lnl float64, round int) *State {
	st := &State{
		Version: FormatVersion,
		Newick:  tree.WriteNewick(t),
		States:  m.States,
		Freqs:   append([]float64(nil), m.Freqs...),
		Exch:    append([]float64(nil), m.Exch...),
		Cats:    m.Cats(),
		LnL:     lnl,
		Round:   round,
	}
	if m.Cats() > 1 {
		// Alpha == +Inf (homogeneous rates over >1 categories) cannot
		// ride in the JSON float — flag it instead of dropping it, or
		// Restore would skip SetGamma and resume with Cats()==1 and a
		// mismatched provider vector length.
		if math.IsInf(m.Alpha, 1) {
			st.AlphaInf = true
		} else {
			st.Alpha = m.Alpha
		}
	}
	st.PInv = m.PInv
	return st
}

// Restore rebuilds the tree and model from the snapshot. Both the
// current version and the v1 schema (a strict subset) are accepted.
func (st *State) Restore() (*tree.Tree, *model.Model, error) {
	if st.Version != 1 && st.Version != FormatVersion {
		return nil, nil, fmt.Errorf("checkpoint: unsupported version %d (want %d)", st.Version, FormatVersion)
	}
	t, err := tree.ParseNewick(st.Newick)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: restoring tree: %w", err)
	}
	exch := st.Exch
	if len(exch) == 0 {
		// Homogeneous exchangeabilities as a fallback.
		exch = make([]float64, st.States*(st.States-1)/2)
		for i := range exch {
			exch[i] = 1
		}
	}
	m, err := model.NewGTR(st.Freqs, exch, st.States)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: restoring model: %w", err)
	}
	if st.Cats > 1 && (st.Alpha > 0 || st.AlphaInf) {
		alpha := st.Alpha
		if st.AlphaInf {
			alpha = math.Inf(1)
		}
		if err := m.SetGamma(alpha, st.Cats); err != nil {
			return nil, nil, fmt.Errorf("checkpoint: restoring gamma: %w", err)
		}
	}
	if st.PInv > 0 {
		if err := m.SetInvariant(st.PInv); err != nil {
			return nil, nil, fmt.Errorf("checkpoint: restoring +I: %w", err)
		}
	}
	return t, m, nil
}

// Save writes the checkpoint atomically.
func Save(path string, st *State) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encoding: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: writing: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: syncing: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: committing: %w", err)
	}
	return nil
}

// Load reads a checkpoint.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading: %w", err)
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("checkpoint: decoding: %w", err)
	}
	if st.Version == 1 {
		// v1 migration: every v1 field survives unchanged in v2 and the
		// Search block stays nil — the resume then restarts the round
		// loop at st.Round without the exact-progress counters.
		st.Version = FormatVersion
	}
	return &st, nil
}
