package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"oocphylo/internal/model"
	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

func TestCaptureRestoreRoundTrip(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 10, Sites: 200, GammaAlpha: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewGTR(d.Patterns.BaseFrequencies(), []float64{0.7, 2.4, 1.1, 0.9, 3.0, 1.0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetGamma(0.55, 4); err != nil {
		t.Fatal(err)
	}
	lnlOf := func(tr *tree.Tree, mm *model.Model) float64 {
		e, err := plf.New(tr, d.Patterns, mm,
			plf.NewInMemoryProvider(tr.NumInner(), plf.VectorLength(mm, d.Patterns.NumPatterns())))
		if err != nil {
			t.Fatal(err)
		}
		lnl, err := e.LogLikelihood()
		if err != nil {
			t.Fatal(err)
		}
		return lnl
	}
	origLnl := lnlOf(d.Tree.Clone(), m)

	st := Capture(d.Tree, m, origLnl, 3)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Round != 3 || loaded.LnL != origLnl {
		t.Errorf("progress metadata lost: %+v", loaded)
	}
	rt, rm, err := loaded.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if tree.RFDistance(rt, d.Tree) != 0 {
		t.Error("topology changed through checkpoint")
	}
	if rm.Alpha != 0.55 || rm.Cats() != 4 {
		t.Errorf("gamma lost: alpha=%v cats=%d", rm.Alpha, rm.Cats())
	}
	// The restored analysis reproduces the likelihood (to round-off of
	// the serialised branch lengths).
	restoredLnl := lnlOf(rt, rm)
	if math.Abs(restoredLnl-origLnl) > 1e-6*math.Abs(origLnl) {
		t.Errorf("restored lnL %v differs from original %v", restoredLnl, origLnl)
	}
}

func TestRestoreHomogeneousModel(t *testing.T) {
	tr, _ := tree.ParseNewick("(a:0.1,b:0.2,c:0.3);")
	m, _ := model.NewJC(4)
	st := Capture(tr, m, -12.5, 0)
	rt, rm, err := st.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if rm.Cats() != 1 {
		t.Errorf("homogeneous model restored with %d categories", rm.Cats())
	}
	if rt.NumTips != 3 {
		t.Error("tree lost")
	}
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	tr, _ := tree.ParseNewick("(a:0.1,b:0.2,c:0.3);")
	m, _ := model.NewJC(4)
	if err := Save(path, Capture(tr, m, -1, 1)); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a newer state; no stray temp files remain.
	if err := Save(path, Capture(tr, m, -2, 2)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("stray files after save: %v", entries)
	}
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 2 {
		t.Error("overwrite did not take effect")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Error("missing file must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	_ = os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("corrupt file must fail")
	}
}

func TestRestoreValidation(t *testing.T) {
	st := &State{Version: 99}
	if _, _, err := st.Restore(); err == nil {
		t.Error("wrong version must fail")
	}
	st = &State{Version: FormatVersion, Newick: "((", States: 4, Freqs: []float64{1, 1, 1, 1}, Cats: 1}
	if _, _, err := st.Restore(); err == nil {
		t.Error("bad newick must fail")
	}
	st = &State{Version: FormatVersion, Newick: "(a:1,b:1,c:1);", States: 4, Freqs: []float64{1, -1, 1, 1}, Cats: 1}
	if _, _, err := st.Restore(); err == nil {
		t.Error("bad frequencies must fail")
	}
}

func TestSaveErrors(t *testing.T) {
	tr, _ := tree.ParseNewick("(a:0.1,b:0.2,c:0.3);")
	m, _ := model.NewJC(4)
	st := Capture(tr, m, -1, 1)
	if err := Save(filepath.Join("/no", "such", "dir", "x.ckpt"), st); err == nil {
		t.Error("unwritable directory must fail")
	}
}

func TestRestoreFallbackExchangeabilities(t *testing.T) {
	// A checkpoint without Exch (e.g. written by a non-GTR model whose
	// Exch slice was empty) restores with unit exchangeabilities.
	st := &State{
		Version: FormatVersion,
		Newick:  "(a:0.1,b:0.2,c:0.3);",
		States:  4,
		Freqs:   []float64{0.25, 0.25, 0.25, 0.25},
		Cats:    1,
	}
	_, m, err := st.Restore()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range m.Exch {
		if e != 1 {
			t.Errorf("fallback exchangeability %v, want 1", e)
		}
	}
}

// TestCheckpointRateModelMatrix round-trips every rate-heterogeneity
// configuration through Save+Load and checks that the restored model
// yields the same category count — and therefore the same provider
// vector length, which is what an out-of-core resume binds its backing
// file geometry to. The alpha=+Inf row is the regression case: JSON
// cannot carry +Inf, and before the AlphaInf flag a restore silently
// came back with Cats()==1 and a mismatched vector length.
func TestCheckpointRateModelMatrix(t *testing.T) {
	const sites = 37 // arbitrary pattern count for vector-length checks
	cases := []struct {
		name     string
		setup    func(m *model.Model) error
		cats     int
		alphaInf bool
	}{
		{"homogeneous", func(m *model.Model) error { return nil }, 1, false},
		{"gamma-finite", func(m *model.Model) error { return m.SetGamma(0.42, 4) }, 4, false},
		{"gamma-infinite-alpha", func(m *model.Model) error { return m.SetGamma(math.Inf(1), 4) }, 4, true},
		{"gamma-plus-inv", func(m *model.Model) error {
			if err := m.SetGamma(1.3, 4); err != nil {
				return err
			}
			return m.SetInvariant(0.2)
		}, 4, false},
		{"homogeneous-plus-inv", func(m *model.Model) error { return m.SetInvariant(0.15) }, 1, false},
	}
	tr, _ := tree.ParseNewick("(a:0.1,b:0.2,(c:0.3,d:0.4):0.5);")
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := model.NewJC(4)
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.setup(m); err != nil {
				t.Fatal(err)
			}
			st := Capture(tr, m, -10, 1)
			if st.AlphaInf != tc.alphaInf {
				t.Errorf("AlphaInf = %v, want %v", st.AlphaInf, tc.alphaInf)
			}
			path := filepath.Join(t.TempDir(), "m.ckpt")
			if err := Save(path, st); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			_, rm, err := loaded.Restore()
			if err != nil {
				t.Fatal(err)
			}
			if rm.Cats() != tc.cats {
				t.Errorf("Cats() = %d after round-trip, want %d", rm.Cats(), tc.cats)
			}
			if got, want := plf.VectorLength(rm, sites), plf.VectorLength(m, sites); got != want {
				t.Errorf("vector length %d after round-trip, want %d (backing file geometry would mismatch)", got, want)
			}
			if rm.PInv != m.PInv {
				t.Errorf("PInv = %v, want %v", rm.PInv, m.PInv)
			}
			if rm.Cats() > 1 && !tc.alphaInf && rm.Alpha != m.Alpha {
				t.Errorf("Alpha = %v, want %v", rm.Alpha, m.Alpha)
			}
			if tc.alphaInf {
				// The restored rates must be the alpha→∞ limit: all 1.
				for _, r := range rm.Rates {
					if r != 1 {
						t.Errorf("alpha=+Inf restored rate %v, want 1", r)
					}
				}
			}
		})
	}
}

// TestCheckpointStoreManifest round-trips the store-manifest section so
// a resume can bind the checkpoint to the backing file it was written
// against.
func TestCheckpointStoreManifest(t *testing.T) {
	tr, _ := tree.ParseNewick("(a:0.1,b:0.2,c:0.3);")
	m, _ := model.NewJC(4)
	st := Capture(tr, m, -3, 7)
	st.Store = &ooc.Manifest{NumVectors: 11, VectorLen: 96, Generation: 42, SumOfSums: 0xdeadbeef}
	path := filepath.Join(t.TempDir(), "s.ckpt")
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Store == nil {
		t.Fatal("store manifest dropped by round-trip")
	}
	if *loaded.Store != *st.Store {
		t.Errorf("store manifest changed: got %+v, want %+v", *loaded.Store, *st.Store)
	}
	// A run without integrity checking writes no manifest at all.
	st2 := Capture(tr, m, -3, 7)
	if err := Save(path, st2); err != nil {
		t.Fatal(err)
	}
	if loaded, err = Load(path); err != nil {
		t.Fatal(err)
	}
	if loaded.Store != nil {
		t.Errorf("in-core checkpoint grew a store manifest: %+v", loaded.Store)
	}
}

func TestCheckpointPersistsPInv(t *testing.T) {
	tr, _ := tree.ParseNewick("(a:0.1,b:0.2,c:0.3);")
	m, _ := model.NewJC(4)
	_ = m.SetGamma(0.7, 4)
	if err := m.SetInvariant(0.35); err != nil {
		t.Fatal(err)
	}
	_, rm, err := Capture(tr, m, -5, 2).Restore()
	if err != nil {
		t.Fatal(err)
	}
	if rm.PInv != 0.35 {
		t.Errorf("PInv lost through checkpoint: %v", rm.PInv)
	}
}
