package search

import (
	"math"
	"math/rand"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/plf"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

func TestOptimizeExchangeabilitiesRecoversKappa(t *testing.T) {
	// Simulate under HKY with kappa = 4 (exchangeabilities 1,4,1,1,4,1),
	// then optimise a GTR model starting from unit rates: the recovered
	// transition/transversion rates should reflect the truth.
	rng := rand.New(rand.NewSource(5))
	truthTree, err := tree.YuleTree(12, 1, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range truthTree.Edges {
		e.Length *= 0.08 / (truthTree.TotalLength() / float64(len(truthTree.Edges)))
		if e.Length < tree.MinBranchLength {
			e.Length = tree.MinBranchLength
		}
	}
	truthModel, err := model.NewHKY([]float64{0.25, 0.25, 0.25, 0.25}, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	aln, err := sim.Evolve(truthTree, truthModel, 8000, rng)
	if err != nil {
		t.Fatal(err)
	}
	pats, err := bio.Compress(aln)
	if err != nil {
		t.Fatal(err)
	}

	gtr, err := model.NewGTR(pats.BaseFrequencies(), []float64{1, 1, 1, 1, 1, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := plf.New(truthTree.Clone(), pats, gtr,
		plf.NewInMemoryProvider(truthTree.NumInner(), plf.VectorLength(gtr, pats.NumPatterns())))
	if err != nil {
		t.Fatal(err)
	}
	s := New(e, Options{})
	before, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SmoothBranches(3, 0.01); err != nil {
		t.Fatal(err)
	}
	exch, lnl, err := s.OptimizeExchangeabilities(3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if lnl <= before {
		t.Errorf("optimisation did not improve lnL: %v -> %v", before, lnl)
	}
	// Order AC, AG, AT, CG, CT, GT; transitions are AG (idx 1) and CT
	// (idx 4), anchored at GT (idx 5) = 1.
	ag, ct := exch[1]/exch[5], exch[4]/exch[5]
	for _, tv := range []float64{exch[0], exch[2], exch[3]} {
		ratio := ag / (tv / exch[5])
		if ratio < 2 {
			t.Errorf("AG transition rate (%v) should clearly exceed transversion (%v)", ag, tv)
		}
	}
	if ag < 2.5 || ag > 6.5 || ct < 2.5 || ct > 6.5 {
		t.Errorf("recovered transition rates AG=%v CT=%v, truth 4", ag, ct)
	}
}

func TestOptimizeExchangeabilitiesRequiresGTR(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 6, Sites: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := d.Model.Clone()
	m.Exch = nil // simulate a non-GTR-parameterised model
	e, err := plf.New(d.Tree.Clone(), d.Patterns, m,
		plf.NewInMemoryProvider(d.Tree.NumInner(), plf.VectorLength(m, d.Patterns.NumPatterns())))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := New(e, Options{}).OptimizeExchangeabilities(1, 0.1); err == nil {
		t.Error("model without exchangeabilities must fail")
	}
}

func TestSetExchangeabilitiesConsistency(t *testing.T) {
	// Setting the same rates must not change likelihoods; setting the
	// true rates must beat wrong ones.
	d, err := sim.NewDataset(sim.Config{Taxa: 10, Sites: 500, GammaAlpha: 1, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	m := d.Model
	if m.Exch == nil {
		t.Skip("dataset model lacks exchangeabilities")
	}
	e, err := plf.New(d.Tree.Clone(), d.Patterns, m,
		plf.NewInMemoryProvider(d.Tree.NumInner(), plf.VectorLength(m, d.Patterns.NumPatterns())))
	if err != nil {
		t.Fatal(err)
	}
	l0, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetExchangeabilities(m.Exch); err != nil {
		t.Fatal(err)
	}
	e.InvalidateAll()
	l1, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l0-l1) > 1e-9*math.Abs(l0) {
		t.Errorf("identical rates changed lnL: %v vs %v", l0, l1)
	}
	// Clearly wrong rates must hurt.
	if err := m.SetExchangeabilities([]float64{10, 0.1, 10, 0.1, 10, 0.1}); err != nil {
		t.Fatal(err)
	}
	e.InvalidateAll()
	l2, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if l2 >= l1 {
		t.Errorf("wrong rates should lower lnL: %v vs %v", l2, l1)
	}
}

func TestOptimizePInvRecoversTruth(t *testing.T) {
	// Simulate with 40% invariant sites; the optimiser should find a
	// proportion near it (biased slightly low: constant-by-chance sites
	// trade off against the Γ shape).
	rng := rand.New(rand.NewSource(17))
	truth, err := tree.YuleTree(14, 1, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range truth.Edges {
		e.Length *= 0.15 / (truth.TotalLength() / float64(len(truth.Edges)))
		if e.Length < tree.MinBranchLength {
			e.Length = tree.MinBranchLength
		}
	}
	m, err := model.NewHKY([]float64{0.25, 0.25, 0.25, 0.25}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetInvariant(0.4); err != nil {
		t.Fatal(err)
	}
	aln, err := sim.Evolve(truth, m, 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	pats, err := bio.Compress(aln)
	if err != nil {
		t.Fatal(err)
	}
	// Fit from pInv = 0.
	fit := m.Clone()
	if err := fit.SetInvariant(0); err != nil {
		t.Fatal(err)
	}
	e, err := plf.New(truth.Clone(), pats, fit,
		plf.NewInMemoryProvider(truth.NumInner(), plf.VectorLength(fit, pats.NumPatterns())))
	if err != nil {
		t.Fatal(err)
	}
	s := New(e, Options{})
	before, err := s.SmoothBranches(3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	p, lnl, err := s.OptimizePInv()
	if err != nil {
		t.Fatal(err)
	}
	if lnl < before {
		t.Errorf("pInv optimisation decreased lnL: %v -> %v", before, lnl)
	}
	if p < 0.25 || p > 0.55 {
		t.Errorf("recovered pInv = %v, truth 0.4", p)
	}
}

func TestOptimizePInvOnVariableDataStaysLow(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 10, Sites: 2000, GammaAlpha: 10, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	e := makeEngineForModelopt(t, d)
	s := New(e, Options{})
	if _, err := s.SmoothBranches(2, 0.01); err != nil {
		t.Fatal(err)
	}
	p, _, err := s.OptimizePInv()
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.15 {
		t.Errorf("data without invariant component fitted pInv = %v", p)
	}
}

func makeEngineForModelopt(t *testing.T, d *sim.Dataset) *plf.Engine {
	t.Helper()
	e, err := plf.New(d.Tree.Clone(), d.Patterns, d.Model.Clone(),
		plf.NewInMemoryProvider(d.Tree.NumInner(), plf.VectorLength(d.Model, d.Patterns.NumPatterns())))
	if err != nil {
		t.Fatal(err)
	}
	return e
}
