package search

// Canonical traversal orders — the foundation of exact resume. A
// checkpointed search resumes from a tree re-parsed out of Newick,
// whose node and edge indices and adjacency-list orders differ from
// the in-place-mutated tree of an uninterrupted run. Any sweep order
// derived from indices or Adj slots therefore diverges between the
// two runs, and because branch smoothing and the SPR polish are
// sequential coordinate ascents, a different visit order means
// different final branch lengths — bit-identity gone.
//
// The orders here depend only on topology and tip names, both of
// which survive a Newick round-trip exactly: the traversal anchors at
// the lexicographically smallest tip and, at every node, descends
// subtrees in order of their smallest contained tip name. Identical
// trees yield identical orders no matter how they were built.

import (
	"sort"

	"oocphylo/internal/tree"
)

// canonicalAnchor returns the tip with the lexicographically smallest
// name — the traversal root every canonical order hangs off.
func canonicalAnchor(t *tree.Tree) *tree.Node {
	best := t.Nodes[0]
	for i := 1; i < t.NumTips; i++ {
		if t.Nodes[i].Name < best.Name {
			best = t.Nodes[i]
		}
	}
	return best
}

// anchorEdge returns the canonical anchor tip's pendant branch: the
// index-independent stand-in for "evaluate the likelihood somewhere".
func anchorEdge(t *tree.Tree) *tree.Edge {
	return canonicalAnchor(t).Adj[0]
}

// minTipFrom returns the smallest tip name in the subtree containing n
// when the edge towards from is cut.
func minTipFrom(n, from *tree.Node, numTips int) string {
	if n.Index < numTips {
		return n.Name
	}
	best := ""
	for _, e := range n.Adj {
		o := e.Other(n)
		if o == from {
			continue
		}
		if m := minTipFrom(o, n, numTips); best == "" || m < best {
			best = m
		}
	}
	return best
}

// canonicalOrder walks the tree from the canonical anchor, descending
// subtrees by smallest tip name, and returns every branch in
// visitation order plus every inner node in first-visit order.
// Consecutive branches share a node (it is a DFS), preserving the
// access locality SmoothBranches' out-of-core miss rates depend on.
func canonicalOrder(t *tree.Tree) ([]*tree.Edge, []*tree.Node) {
	edges := make([]*tree.Edge, 0, len(t.Edges))
	inner := make([]*tree.Node, 0, len(t.Nodes)-t.NumTips)
	var walk func(n, from *tree.Node)
	walk = func(n, from *tree.Node) {
		if n.Index >= t.NumTips {
			inner = append(inner, n)
		}
		type step struct {
			e   *tree.Edge
			o   *tree.Node
			key string
		}
		var steps []step
		for _, e := range n.Adj {
			o := e.Other(n)
			if o == from {
				continue
			}
			steps = append(steps, step{e, o, minTipFrom(o, n, t.NumTips)})
		}
		sort.Slice(steps, func(i, j int) bool { return steps[i].key < steps[j].key })
		for _, s := range steps {
			edges = append(edges, s.e)
			walk(s.o, n)
		}
	}
	walk(canonicalAnchor(t), nil)
	return edges, inner
}

// canonicalNeighbors returns n's neighbors ordered by the smallest tip
// name of the subtree behind each — computed fresh so mid-sweep
// topology edits are reflected identically in every run that reached
// the same tree.
func canonicalNeighbors(t *tree.Tree, n *tree.Node) []*tree.Node {
	out := make([]*tree.Node, 0, len(n.Adj))
	for _, e := range n.Adj {
		out = append(out, e.Other(n))
	}
	sort.Slice(out, func(i, j int) bool {
		return minTipFrom(out[i], n, t.NumTips) < minTipFrom(out[j], n, t.NumTips)
	})
	return out
}

// canonicalAdjEdges returns n's adjacent branches in canonical
// neighbor order, for the sequential polish after an applied move.
func canonicalAdjEdges(t *tree.Tree, n *tree.Node) []*tree.Edge {
	out := append([]*tree.Edge(nil), n.Adj...)
	sort.Slice(out, func(i, j int) bool {
		return minTipFrom(out[i].Other(n), n, t.NumTips) < minTipFrom(out[j].Other(n), n, t.NumTips)
	})
	return out
}
