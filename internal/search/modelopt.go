package search

import (
	"errors"
	"math"

	"oocphylo/internal/mathx"
)

// GTR exchangeability optimisation: coordinate-wise Brent over the free
// rates (the last exchangeability is fixed at 1 as the identifiability
// anchor, RAxML's convention). Every trial rebuilds the rate-matrix
// eigendecomposition and requires a full tree traversal — together with
// the Γ-shape optimisation this is exactly the model-optimisation
// workload the paper's Figure 5 full traversals stand in for.

// exchBounds clamp individual exchangeabilities during optimisation.
const (
	exchMin = 1e-3
	exchMax = 1e3
)

// OptimizePInv Brent-optimises the proportion of invariant sites in
// [0, 0.99]. The invariant component needs no ancestral vectors, so
// after one traversal every trial is a pure re-evaluation — the
// cheapest model parameter in the whole likelihood.
func (s *Searcher) OptimizePInv() (float64, float64, error) {
	e := s.E
	m := e.M
	edge := e.T.Edges[0]
	if err := e.Traverse(edge); err != nil {
		return 0, 0, err
	}
	var evalErr error
	neg := func(p float64) float64 {
		if err := m.SetInvariant(p); err != nil {
			evalErr = err
			return math.Inf(1)
		}
		lnl, err := e.LogLikelihoodAt(edge)
		if err != nil {
			evalErr = err
			return math.Inf(1)
		}
		return -lnl
	}
	incumbent := m.PInv
	lnl0 := -neg(incumbent)
	best, negLnl, err := mathx.Brent(neg, 0, 0.99, 1e-5, 60)
	if err != nil {
		return 0, 0, err
	}
	if evalErr != nil {
		return 0, 0, evalErr
	}
	if -negLnl < lnl0 {
		best = incumbent
	}
	if err := m.SetInvariant(best); err != nil {
		return 0, 0, err
	}
	lnl, err := e.LogLikelihoodAt(edge)
	if err != nil {
		return 0, 0, err
	}
	return best, lnl, nil
}

// OptimizeExchangeabilities coordinate-optimises the model's GTR rates,
// running up to `sweeps` passes over the free parameters or stopping
// when a full pass improves the log-likelihood by less than eps. It
// returns the final rates and log-likelihood. The engine's model is
// updated in place.
func (s *Searcher) OptimizeExchangeabilities(sweeps int, eps float64) ([]float64, float64, error) {
	m := s.E.M
	if m.Exch == nil {
		return nil, 0, errors.New("search: model has no exchangeability parameterisation")
	}
	if sweeps <= 0 {
		sweeps = 3
	}
	if eps <= 0 {
		eps = 0.1
	}
	exch := append([]float64(nil), m.Exch...)
	nFree := len(exch) - 1 // last rate anchored at 1

	// Normalise the anchor to 1 up front.
	if exch[len(exch)-1] != 1 {
		anchor := exch[len(exch)-1]
		for i := range exch {
			exch[i] /= anchor
		}
		if err := m.SetExchangeabilities(exch); err != nil {
			return nil, 0, err
		}
		s.E.InvalidateAll()
	}

	cur, err := s.E.LogLikelihood()
	if err != nil {
		return nil, 0, err
	}
	apply := func(i int, v float64) (float64, error) {
		exch[i] = v
		if err := m.SetExchangeabilities(exch); err != nil {
			return 0, err
		}
		s.E.InvalidateAll()
		return s.E.LogLikelihood()
	}
	for sweep := 0; sweep < sweeps; sweep++ {
		before := cur
		for i := 0; i < nFree; i++ {
			old := exch[i]
			var evalErr error
			neg := func(v float64) float64 {
				lnl, err := apply(i, v)
				if err != nil {
					evalErr = err
					return math.Inf(1)
				}
				return -lnl
			}
			// Bracket around the current value in log space.
			lo := math.Max(exchMin, old/16)
			hi := math.Min(exchMax, old*16)
			best, negLnl, err := mathx.Brent(neg, lo, hi, 1e-3, 40)
			if err != nil {
				return nil, 0, err
			}
			if evalErr != nil {
				return nil, 0, evalErr
			}
			if -negLnl >= cur {
				cur = -negLnl
				if _, err := apply(i, best); err != nil {
					return nil, 0, err
				}
			} else {
				// Brent landed worse than the incumbent (flat surface):
				// restore.
				if _, err := apply(i, old); err != nil {
					return nil, 0, err
				}
			}
		}
		if cur-before < eps {
			break
		}
	}
	// Leave the engine evaluated at the final parameters.
	final, err := s.E.LogLikelihood()
	if err != nil {
		return nil, 0, err
	}
	return append([]float64(nil), m.Exch...), final, nil
}
