package search

// Observability wiring for the search loop. Counters mirror the Result
// fields natively (Result is a plain struct owned by the compute
// goroutine; a publisher reading it from the debug endpoint would
// race), gauges expose live progress: the current log-likelihood and
// the candidate-evaluation rate of the latest SPR sweep — the numbers
// an operator watches to decide whether a long run is still moving.

import (
	"time"

	"oocphylo/internal/obs"
)

// searchObs holds the searcher's instruments; the zero value is the
// uninstrumented state.
type searchObs struct {
	on                       bool
	tracer                   *obs.Tracer
	rounds, tested, accepted *obs.Counter
	// lnl tracks the best log-likelihood so far; movesPerSec is the
	// candidate-evaluation rate of the latest SPR sweep.
	lnl, movesPerSec *obs.FloatGauge
	// roundLat observes the duration of each SPR sweep.
	roundLat *obs.Histogram
}

// Instrument attaches reg and tr to the searcher (either may be nil).
// Call before Run; at most once.
func (s *Searcher) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	if s.sobs.on || (reg == nil && tr == nil) {
		return
	}
	s.sobs = searchObs{
		on:          true,
		tracer:      tr,
		rounds:      reg.Counter("search.rounds"),
		tested:      reg.Counter("search.moves_tested"),
		accepted:    reg.Counter("search.moves_accepted"),
		lnl:         reg.FloatGauge("search.lnl"),
		movesPerSec: reg.FloatGauge("search.moves_per_sec"),
		roundLat:    reg.Histogram("search.round_seconds", nil),
	}
}

// noteRound records one completed SPR sweep: durations, progress
// gauges and an OpRound span on the compute lane (VID carries the
// round number — there is no vector identity at this level).
func (s *Searcher) noteRound(round int, res *Result, lnl float64, start time.Time, testedBefore int) {
	if !s.sobs.on {
		return
	}
	dur := time.Since(start)
	s.sobs.rounds.Inc()
	s.sobs.roundLat.Observe(dur.Seconds())
	s.sobs.lnl.Set(lnl)
	s.sobs.tested.Set(int64(res.TestedMoves))
	s.sobs.accepted.Set(int64(res.AcceptedMoves))
	if secs := dur.Seconds(); secs > 0 {
		s.sobs.movesPerSec.Set(float64(res.TestedMoves-testedBefore) / secs)
	}
	s.sobs.tracer.Emit(obs.OpRound, 0, int32(round), -1, start, dur)
}
