package search

import (
	"math"
	"math/rand"
	"testing"

	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

func makeEngine(tb testing.TB, d *sim.Dataset, start *tree.Tree) *plf.Engine {
	tb.Helper()
	prov := plf.NewInMemoryProvider(start.NumInner(), plf.VectorLength(d.Model, d.Patterns.NumPatterns()))
	e, err := plf.New(start, d.Patterns, d.Model, prov)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

func startTree(tb testing.TB, d *sim.Dataset, seed int64) *tree.Tree {
	tb.Helper()
	names := make([]string, d.Tree.NumTips)
	for i := range names {
		names[i] = d.Tree.Nodes[i].Name
	}
	tr, err := tree.RandomTopology(names, rand.New(rand.NewSource(seed)), 0.05, 0.15)
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

func TestSmoothBranchesImproves(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 14, Sites: 300, GammaAlpha: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	start := startTree(t, d, 2)
	e := makeEngine(t, d, start)
	before, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	s := New(e, Options{})
	after, err := s.SmoothBranches(6, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if after < before {
		t.Errorf("smoothing decreased lnL: %v -> %v", before, after)
	}
	// Engine-internal consistency: a forced fresh evaluation agrees.
	e.InvalidateAll()
	fresh, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fresh-after) > 1e-7*(1+math.Abs(fresh)) {
		t.Errorf("incremental lnL %v disagrees with fresh recompute %v", after, fresh)
	}
}

func TestSearchImprovesAndStaysConsistent(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 12, Sites: 400, GammaAlpha: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	start := startTree(t, d, 4)
	e := makeEngine(t, d, start)
	s := New(e, Options{SPRRadius: 6, MaxRounds: 4})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LnL < res.StartLnL {
		t.Errorf("search decreased lnL: %v -> %v", res.StartLnL, res.LnL)
	}
	if res.TestedMoves == 0 {
		t.Error("search tested no moves")
	}
	// The incremental bookkeeping (partial traversals, orientation
	// invalidation after SPR) must agree exactly with a cold recompute —
	// this is the test that catches stale ancestral vectors.
	e.InvalidateAll()
	fresh, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fresh-res.LnL) > 1e-7*(1+math.Abs(fresh)) {
		t.Errorf("search lnL %v disagrees with fresh recompute %v (stale vectors?)", res.LnL, fresh)
	}
	if err := e.T.Check(); err != nil {
		t.Fatalf("search corrupted the tree: %v", err)
	}
}

func TestSearchRecoversTrueTopology(t *testing.T) {
	// Strong signal, moderate size: the hill climb should land on (or
	// very near) the generating topology.
	d, err := sim.NewDataset(sim.Config{Taxa: 10, Sites: 2000, GammaAlpha: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	start := startTree(t, d, 9)
	if tree.RFDistance(start, d.Tree) == 0 {
		t.Fatal("start already at truth; pick another seed")
	}
	e := makeEngine(t, d, start)
	s := New(e, Options{SPRRadius: 8, MaxRounds: 8})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if rf := tree.RFDistance(e.T, d.Tree); rf > 2 {
		t.Errorf("search ended RF=%d from the true tree", rf)
	}
}

func TestSearchDeterministicGivenStart(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 12, Sites: 300, GammaAlpha: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	run := func() (float64, string) {
		d2, _ := sim.NewDataset(sim.Config{Taxa: 12, Sites: 300, GammaAlpha: 1, Seed: 11})
		start := startTree(t, d2, 12)
		e := makeEngine(t, d2, start)
		res, err := New(e, Options{SPRRadius: 5, MaxRounds: 3}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.LnL, tree.WriteNewick(e.T)
	}
	l1, t1 := run()
	l2, t2 := run()
	if l1 != l2 || t1 != t2 {
		t.Errorf("search is not deterministic: %v vs %v", l1, l2)
	}
	_ = d
}

func TestSearchOOCIdenticalToStandard(t *testing.T) {
	// The paper's headline §4.1 check on the full search workload: for
	// each strategy and fraction the OOC run returns exactly the
	// standard run's tree and likelihood.
	build := func() (*sim.Dataset, *tree.Tree) {
		d, err := sim.NewDataset(sim.Config{Taxa: 14, Sites: 250, GammaAlpha: 1, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		return d, startTree(t, d, 22)
	}
	d, start := build()
	eStd := makeEngine(t, d, start)
	resStd, err := New(eStd, Options{SPRRadius: 5, MaxRounds: 3}).Run()
	if err != nil {
		t.Fatal(err)
	}
	stdNewick := tree.WriteNewick(eStd.T)

	for _, f := range []float64{0.25, 0.75} {
		for _, stratName := range []string{"RAND", "LRU", "Topological"} {
			d2, start2 := build()
			vecLen := plf.VectorLength(d2.Model, d2.Patterns.NumPatterns())
			var strat ooc.Strategy
			switch stratName {
			case "RAND":
				strat = ooc.NewRandom(rand.New(rand.NewSource(5)))
			case "LRU":
				strat = ooc.NewLRU(start2.NumInner())
			case "Topological":
				strat = ooc.NewTopological(start2)
			}
			mgr, err := ooc.NewManager(ooc.Config{
				NumVectors:   start2.NumInner(),
				VectorLen:    vecLen,
				Slots:        ooc.SlotsForFraction(f, start2.NumInner()),
				Strategy:     strat,
				ReadSkipping: true,
				Store:        ooc.NewMemStore(start2.NumInner(), vecLen),
			})
			if err != nil {
				t.Fatal(err)
			}
			e, err := plf.New(start2, d2.Patterns, d2.Model, mgr)
			if err != nil {
				t.Fatal(err)
			}
			res, err := New(e, Options{SPRRadius: 5, MaxRounds: 3}).Run()
			if err != nil {
				t.Fatalf("%s f=%v: %v", stratName, f, err)
			}
			if res.LnL != resStd.LnL {
				t.Errorf("%s f=%v: lnL %v != standard %v", stratName, f, res.LnL, resStd.LnL)
			}
			if got := tree.WriteNewick(e.T); got != stdNewick {
				t.Errorf("%s f=%v: final tree differs from standard", stratName, f)
			}
			if mgr.Stats().Misses == 0 {
				t.Errorf("%s f=%v: workload never missed", stratName, f)
			}
		}
	}
}

func TestOptimizeAlphaRecoversTruth(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 16, Sites: 3000, GammaAlpha: 0.5, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	// Score on the true topology but start alpha far away.
	e := makeEngine(t, d, d.Tree.Clone())
	if err := d.Model.SetGamma(5.0, 4); err != nil {
		t.Fatal(err)
	}
	s := New(e, Options{})
	if _, err := s.SmoothBranches(3, 1e-2); err != nil {
		t.Fatal(err)
	}
	alpha, lnl, err := s.OptimizeAlpha()
	if err != nil {
		t.Fatal(err)
	}
	if alpha < 0.3 || alpha > 0.8 {
		t.Errorf("recovered alpha %v, truth 0.5", alpha)
	}
	if math.IsNaN(lnl) || math.IsInf(lnl, 0) {
		t.Error("alpha optimisation returned bad lnL")
	}
}

func TestOptimizeAlphaRequiresGamma(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 6, Sites: 50, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	e := makeEngine(t, d, d.Tree.Clone())
	if _, _, err := New(e, Options{}).OptimizeAlpha(); err == nil {
		t.Error("alpha optimisation without gamma categories must fail")
	}
}

// TestLocalityBranchOptimisation pins down the paper's §4.2 claim: once
// a branch's endpoint vectors are valid, optimising that branch touches
// exactly the two endpoint vectors, however many Newton iterations run.
func TestLocalityBranchOptimisation(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 20, Sites: 200, GammaAlpha: 1, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	start := d.Tree.Clone()
	vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors: start.NumInner(), VectorLen: vecLen,
		Slots:    start.NumInner(), // all resident: isolate request counts
		Strategy: ooc.NewLRU(start.NumInner()),
		Store:    ooc.NewMemStore(start.NumInner(), vecLen),
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := plf.New(start, d.Patterns, d.Model, mgr)
	if err != nil {
		t.Fatal(err)
	}
	// Pick an internal edge and make it current.
	var edge *tree.Edge
	for _, c := range start.Edges {
		if !c.N[0].IsTip() && !c.N[1].IsTip() {
			edge = c
			break
		}
	}
	if _, err := e.LogLikelihoodAt(edge); err != nil {
		t.Fatal(err)
	}
	before := mgr.Stats().Requests
	if _, err := e.OptimizeBranch(edge); err != nil {
		t.Fatal(err)
	}
	delta := mgr.Stats().Requests - before
	if delta != 2 {
		t.Errorf("branch optimisation issued %d vector requests, want exactly 2", delta)
	}
	if e.Stats.NewtonIters == 0 {
		t.Error("Newton never iterated; locality claim untested")
	}
}
