package search

import (
	"math"
	"testing"

	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

func TestNNIRoundImprovesWrongTopology(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 10, Sites: 1500, GammaAlpha: 5, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the true tree by one NNI: one round should fix it.
	start := d.Tree.Clone()
	var internal *tree.Edge
	for _, e := range start.Edges {
		if !e.N[0].IsTip() && !e.N[1].IsTip() {
			internal = e
			break
		}
	}
	if _, err := tree.NNI(start, internal, 0, 0); err != nil {
		t.Fatal(err)
	}
	if tree.RFDistance(start, d.Tree) == 0 {
		t.Fatal("perturbation had no effect")
	}
	e := makeEngine(t, d, start)
	s := New(e, Options{MaxRounds: 4})
	res, err := s.RunNNI()
	if err != nil {
		t.Fatal(err)
	}
	if res.LnL < res.StartLnL {
		t.Errorf("NNI search decreased lnL: %v -> %v", res.StartLnL, res.LnL)
	}
	if rf := tree.RFDistance(e.T, d.Tree); rf != 0 {
		t.Errorf("NNI search should recover the true topology, RF = %d", rf)
	}
	// Incremental state consistent with a cold recompute.
	e.InvalidateAll()
	fresh, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fresh-res.LnL) > 1e-7*(1+math.Abs(fresh)) {
		t.Errorf("NNI bookkeeping inconsistent: %v vs fresh %v", res.LnL, fresh)
	}
	if err := e.T.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestNNIRejectsKeepTopology(t *testing.T) {
	// On the true tree with strong data, no NNI should be accepted and
	// the topology must survive a round untouched.
	d, err := sim.NewDataset(sim.Config{Taxa: 12, Sites: 2000, GammaAlpha: 5, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	e := makeEngine(t, d, d.Tree.Clone())
	s := New(e, Options{})
	lnl, err := s.SmoothBranches(4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	improved, newLnl, err := s.NNIRound(lnl)
	if err != nil {
		t.Fatal(err)
	}
	if improved {
		t.Error("no NNI should improve the true tree on strong data")
	}
	if newLnl != lnl {
		t.Errorf("rejected rounds must not change lnl: %v vs %v", newLnl, lnl)
	}
	if rf := tree.RFDistance(e.T, d.Tree); rf != 0 {
		t.Errorf("round corrupted topology: RF = %d", rf)
	}
	e.InvalidateAll()
	fresh, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fresh-lnl) > 1e-7*(1+math.Abs(fresh)) {
		t.Errorf("reject path left stale vectors: %v vs fresh %v", lnl, fresh)
	}
}
