package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

func TestRunCtxCanceledBeforeRounds(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 10, Sites: 200, GammaAlpha: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := makeEngine(t, d, startTree(t, d, 6))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := New(e, Options{MaxRounds: 3}).RunCtx(ctx)
	var itr *Interrupted
	if !errors.As(err, &itr) {
		t.Fatalf("err = %v, want *Interrupted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("Interrupted does not unwrap to context.Canceled")
	}
	// Cancelled before the first round: the initial smoothing already
	// ran, Progress names round 0 and the smoothed likelihood.
	if itr.Progress.Round != 0 {
		t.Errorf("Progress.Round = %d, want 0", itr.Progress.Round)
	}
	if res == nil || res.LnL != itr.Progress.LnL {
		t.Errorf("partial result lnL %v disagrees with Progress %v", res.LnL, itr.Progress.LnL)
	}
}

func TestRunCtxCancelMidSweepLeavesConsistentTree(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 14, Sites: 300, GammaAlpha: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	e := makeEngine(t, d, startTree(t, d, 8))
	ctx, cancel := context.WithCancel(context.Background())
	s := New(e, Options{SPRRadius: 5, MaxRounds: 4})
	// Cancel from inside the first round via the round callback's
	// sibling hook: there is none mid-sweep, so cancel after a fixed
	// number of junction visits by wrapping the context deadline — the
	// simplest deterministic trigger is cancelling once the first
	// callback fires... but callbacks run at round boundaries. Instead,
	// cancel concurrently-safely before the sweep's junction check by
	// running one round first.
	calls := 0
	s.Opts.RoundCallback = func(p Progress) error {
		calls++
		cancel()
		return nil
	}
	res, err := s.RunCtx(ctx)
	var itr *Interrupted
	if !errors.As(err, &itr) {
		t.Fatalf("err = %v, want *Interrupted after cancel at round boundary", err)
	}
	if calls == 0 {
		t.Fatal("round callback never ran")
	}
	// The tree must be structurally whole: every node has 3 neighbours
	// (or 1 for tips), and a fresh likelihood evaluation works.
	if err := checkDegrees(e.T); err != nil {
		t.Fatal(err)
	}
	e.InvalidateAll()
	fresh, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fresh-res.LnL) > 1e-7*(1+math.Abs(fresh)) {
		t.Errorf("lnL at interrupt %v disagrees with fresh recompute %v", res.LnL, fresh)
	}
}

// canonFingerprint serialises a tree in canonical form so two
// value-identical trees compare equal regardless of how their
// adjacency lists happen to be ordered (WriteNewick starts at Edges[0]
// and follows Adj order, both of which are representation accidents).
func canonFingerprint(t *tree.Tree) string {
	tree.Canonicalize(t)
	anchor := t.Nodes[0]
	for i := 1; i < t.NumTips; i++ {
		if t.Nodes[i].Name < anchor.Name {
			anchor = t.Nodes[i]
		}
	}
	var b strings.Builder
	var walk func(n, from *tree.Node, via *tree.Edge)
	walk = func(n, from *tree.Node, via *tree.Edge) {
		if n.Index < t.NumTips {
			fmt.Fprintf(&b, "%s:%x", n.Name, math.Float64bits(via.Length))
			return
		}
		b.WriteByte('(')
		first := true
		for _, e := range n.Adj {
			o := e.Other(n)
			if o == from {
				continue
			}
			if !first {
				b.WriteByte(',')
			}
			first = false
			walk(o, n, e)
		}
		fmt.Fprintf(&b, "):%x", math.Float64bits(via.Length))
	}
	e0 := anchor.Adj[0]
	fmt.Fprintf(&b, "%s=", anchor.Name)
	walk(e0.Other(anchor), anchor, e0)
	return b.String()
}

func checkDegrees(t *tree.Tree) error {
	for _, n := range t.Nodes {
		want := 3
		if n.Index < t.NumTips {
			want = 1
		}
		deg := 0
		for _, e := range n.Adj {
			if e != nil {
				deg++
			}
		}
		if deg != want {
			return errors.New("node with wrong degree after interrupt")
		}
	}
	return nil
}

func TestResumeBitIdenticalAtRoundBoundary(t *testing.T) {
	// An uninterrupted run vs stop-at-round-k + resume: final tree and
	// likelihood must match bit for bit. This is the in-process half of
	// the kill/resume guarantee (cmd/oocraxml's soak is the on-disk
	// half).
	d, err := sim.NewDataset(sim.Config{Taxa: 16, Sites: 300, GammaAlpha: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: run to completion, remembering the round-1 position.
	base := startTree(t, d, 10)
	eBase := makeEngine(t, d, base.Clone())
	sBase := New(eBase, Options{SPRRadius: 5, MaxRounds: 3})
	var atRound1 *Progress
	var treeAtRound1 string
	sBase.Opts.RoundCallback = func(p Progress) error {
		if p.Round == 1 {
			pp := p
			atRound1 = &pp
			treeAtRound1 = tree.WriteNewick(eBase.T)
		}
		return nil
	}
	resBase, err := sBase.Run()
	if err != nil {
		t.Fatal(err)
	}
	if atRound1 == nil {
		t.Skip("search converged before round 1; nothing to resume")
	}

	// Resumed run: restart from the round-1 tree and position.
	rt, err := tree.ParseNewick(treeAtRound1)
	if err != nil {
		t.Fatal(err)
	}
	eRes := makeEngine(t, d, rt)
	sRes := New(eRes, Options{SPRRadius: 5, MaxRounds: 3, Resume: atRound1})
	resRes, err := sRes.Run()
	if err != nil {
		t.Fatal(err)
	}

	if math.Float64bits(resRes.LnL) != math.Float64bits(resBase.LnL) {
		t.Errorf("resumed lnL %.17g != baseline %.17g", resRes.LnL, resBase.LnL)
	}
	if got, want := canonFingerprint(eRes.T), canonFingerprint(eBase.T); got != want {
		t.Errorf("resumed tree differs from baseline:\n%s\n%s", got, want)
	}
	// Cumulative counters carry across the resume.
	if resRes.TestedMoves != resBase.TestedMoves || resRes.AcceptedMoves != resBase.AcceptedMoves {
		t.Errorf("counters diverged: resumed %d/%d, baseline %d/%d",
			resRes.TestedMoves, resRes.AcceptedMoves, resBase.TestedMoves, resBase.AcceptedMoves)
	}
	if resRes.Final.Round != resBase.Final.Round {
		t.Errorf("Final.Round: resumed %d, baseline %d", resRes.Final.Round, resBase.Final.Round)
	}
}

func TestResumeFromFinalConverges(t *testing.T) {
	// Resuming from a completion checkpoint re-runs at most one
	// non-improving sweep and lands on the identical tree — this is
	// what makes the soak's "resume after the last crash" step safe
	// even when the crash landed after search completion.
	d, err := sim.NewDataset(sim.Config{Taxa: 12, Sites: 250, GammaAlpha: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	e1 := makeEngine(t, d, startTree(t, d, 12))
	res1, err := New(e1, Options{SPRRadius: 5, MaxRounds: 3}).Run()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := tree.ParseNewick(tree.WriteNewick(e1.T))
	if err != nil {
		t.Fatal(err)
	}
	e2 := makeEngine(t, d, rt)
	fin := res1.Final
	res2, err := New(e2, Options{SPRRadius: 5, MaxRounds: 3, Resume: &fin}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res2.LnL) != math.Float64bits(res1.LnL) {
		t.Errorf("re-resumed lnL %.17g != original %.17g", res2.LnL, res1.LnL)
	}
	if canonFingerprint(e2.T) != canonFingerprint(e1.T) {
		t.Error("re-resumed tree differs from original")
	}
}
