// Package search implements a RAxML-style Maximum-Likelihood tree
// search on top of the plf engine: iterated branch-length smoothing
// (Newton-Raphson per branch), lazy subtree-pruning-regrafting with a
// bounded rearrangement radius (RAxML's "Lazy SPR", re-optimising only
// the insertion branch per candidate and the three affected branches on
// acceptance), and Γ-shape optimisation by Brent's method.
//
// The search is deterministic given the starting tree — the property
// the paper uses as its correctness criterion (§4.1): under any
// replacement strategy and any memory fraction f, the out-of-core runs
// must return exactly the tree and log-likelihood of the standard run.
//
// The package is also the workload generator for the paper's Figures
// 2-4: its access pattern (branch smoothing hammering two vectors,
// lazy SPR touching small neighborhoods) is what produces the low miss
// rates the paper reports (§4.2).
package search

import (
	"errors"
	"fmt"
	"math"
	"time"

	"oocphylo/internal/mathx"
	"oocphylo/internal/plf"
	"oocphylo/internal/tree"
)

// Options tunes the search.
type Options struct {
	// SPRRadius bounds the regraft scan around each pruning site in
	// node-distance (RAxML's rearrangement setting). Default 5.
	SPRRadius int
	// MaxRounds caps the number of SPR improvement rounds. Default 10.
	MaxRounds int
	// Epsilon is the minimum log-likelihood gain that counts as an
	// improvement. Default 0.01.
	Epsilon float64
	// SmoothPasses caps the branch-length smoothing sweeps per call.
	// Default 4.
	SmoothPasses int
	// OptimizeModel also optimises the Γ shape parameter between rounds
	// (requires the engine's model to have >= 2 rate categories).
	OptimizeModel bool
	// RoundCallback, when non-nil, runs after every completed SPR round
	// with the round number and current likelihood (checkpointing
	// hook). A returned error aborts the search.
	RoundCallback func(round int, lnl float64) error
}

func (o *Options) fill() {
	if o.SPRRadius <= 0 {
		o.SPRRadius = 5
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 10
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.01
	}
	if o.SmoothPasses <= 0 {
		o.SmoothPasses = 4
	}
}

// Result reports what the search did.
type Result struct {
	// LnL is the final log-likelihood.
	LnL float64
	// StartLnL is the log-likelihood of the starting tree after initial
	// branch smoothing.
	StartLnL float64
	// Rounds is the number of SPR rounds executed.
	Rounds int
	// AcceptedMoves counts applied SPR rearrangements.
	AcceptedMoves int
	// TestedMoves counts evaluated candidate insertions.
	TestedMoves int
	// Alpha is the final Γ shape (NaN when not optimised).
	Alpha float64
}

// Searcher drives an ML search over one engine.
type Searcher struct {
	E    *plf.Engine
	Opts Options
	// sobs holds the observability instruments (see obs.go); the zero
	// value means uninstrumented.
	sobs searchObs
}

// New returns a Searcher with filled-in defaults.
func New(e *plf.Engine, opts Options) *Searcher {
	opts.fill()
	return &Searcher{E: e, Opts: opts}
}

// SmoothBranches optimises every branch length, repeating up to passes
// sweeps or until a sweep improves the log-likelihood by less than eps.
// Branches are visited in depth-first order from the first edge, like
// RAxML's smoothTree: consecutive branches share a node, so each
// partial traversal touches only a couple of vectors — the access
// locality the paper's miss rates depend on (§4.2). Returns the final
// lnL.
func (s *Searcher) SmoothBranches(passes int, eps float64) (float64, error) {
	t := s.E.T
	order := DFSEdges(t)
	lnl, err := s.E.LogLikelihood()
	if err != nil {
		return 0, err
	}
	for pass := 0; pass < passes; pass++ {
		before := lnl
		for _, e := range order {
			lnl, err = s.E.OptimizeBranch(e)
			if err != nil {
				return 0, err
			}
		}
		if lnl-before < eps {
			break
		}
	}
	return lnl, nil
}

// DFSEdges returns all branches in depth-first visitation order
// starting from the tree's first edge. The order is deterministic.
func DFSEdges(t *tree.Tree) []*tree.Edge {
	out := make([]*tree.Edge, 0, len(t.Edges))
	seen := make([]bool, len(t.Edges))
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		for _, e := range n.Adj {
			if seen[e.Index] {
				continue
			}
			seen[e.Index] = true
			out = append(out, e)
			walk(e.Other(n))
		}
	}
	walk(t.Edges[0].N[0])
	walk(t.Edges[0].N[1])
	return out
}

// OptimizeAlpha Brent-optimises the Γ shape parameter in [0.02, 100].
// Every trial re-discretises the rates and requires a full traversal —
// the paper's §4.3 rationale for its full-traversal benchmark workload.
func (s *Searcher) OptimizeAlpha() (float64, float64, error) {
	m := s.E.M
	if m.Cats() < 2 {
		return 0, 0, errors.New("search: alpha optimisation needs >= 2 rate categories")
	}
	ncat := m.Cats()
	eval := func(alpha float64) float64 {
		if err := m.SetGamma(alpha, ncat); err != nil {
			return math.Inf(1)
		}
		s.E.InvalidateAll()
		lnl, err := s.E.LogLikelihood()
		if err != nil {
			return math.Inf(1)
		}
		return -lnl
	}
	start := m.Alpha
	if math.IsInf(start, 0) || start <= 0 {
		start = 1
	}
	alpha, neg, err := mathx.Brent(eval, 0.02, 100, 1e-4, 60)
	if err != nil {
		return 0, 0, err
	}
	// Leave the model at the optimum.
	if err := m.SetGamma(alpha, ncat); err != nil {
		return 0, 0, err
	}
	s.E.InvalidateAll()
	if _, err := s.E.LogLikelihood(); err != nil {
		return 0, 0, err
	}
	return alpha, -neg, nil
}

// Run executes the full hill climb: initial smoothing, then SPR rounds
// until no move improves by Epsilon or MaxRounds is hit.
func (s *Searcher) Run() (*Result, error) {
	res := &Result{Alpha: math.NaN()}
	lnl, err := s.SmoothBranches(s.Opts.SmoothPasses, s.Opts.Epsilon)
	if err != nil {
		return nil, err
	}
	res.StartLnL = lnl
	s.sobs.lnl.Set(lnl)
	if s.Opts.OptimizeModel && s.E.M.Cats() >= 2 {
		alpha, l, err := s.OptimizeAlpha()
		if err != nil {
			return nil, err
		}
		res.Alpha = alpha
		lnl = l
	}
	for round := 0; round < s.Opts.MaxRounds; round++ {
		res.Rounds++
		var roundStart time.Time
		testedBefore := res.TestedMoves
		if s.sobs.on {
			roundStart = time.Now()
		}
		improved, newLnl, err := s.sprRound(lnl, res)
		if err != nil {
			return nil, err
		}
		lnl = newLnl
		s.noteRound(res.Rounds, res, lnl, roundStart, testedBefore)
		if !improved {
			break
		}
		lnl, err = s.SmoothBranches(s.Opts.SmoothPasses, s.Opts.Epsilon)
		if err != nil {
			return nil, err
		}
		if s.Opts.OptimizeModel && s.E.M.Cats() >= 2 {
			alpha, l, err := s.OptimizeAlpha()
			if err != nil {
				return nil, err
			}
			res.Alpha = alpha
			if l > lnl {
				lnl = l
			}
		}
		if s.Opts.RoundCallback != nil {
			if err := s.Opts.RoundCallback(res.Rounds, lnl); err != nil {
				return nil, err
			}
		}
		s.sobs.lnl.Set(lnl)
	}
	res.LnL = lnl
	s.sobs.lnl.Set(lnl)
	return res, nil
}

// sprRound tries to improve the tree by one sweep of lazy SPR moves
// over every (junction, subtree) pair, applying each improving move
// immediately (greedy, RAxML-style).
func (s *Searcher) sprRound(lnl float64, res *Result) (bool, float64, error) {
	t := s.E.T
	improvedAny := false
	// Inner nodes are iterated by stable index for determinism.
	for idx := t.NumTips; idx < len(t.Nodes); idx++ {
		u := t.Nodes[idx]
		for side := 0; side < 3; side++ {
			v := u.Neighbor(side)
			better, newLnl, err := s.tryMoveSubtree(u, v, lnl)
			if err != nil {
				return false, 0, err
			}
			res.TestedMoves += better.tested
			if better.applied {
				res.AcceptedMoves++
				improvedAny = true
				lnl = newLnl
			}
		}
	}
	return improvedAny, lnl, nil
}

type moveOutcome struct {
	applied bool
	tested  int
}

// tryMoveSubtree prunes the subtree hanging from junction u via v,
// scans insertion branches within the radius, and either applies the
// best improving insertion or restores the original topology.
//
// Vector-validity discipline (see the engine docs): a traversal is run
// at the pendant edge before pruning so every valid vector points at
// the edit site; the junction's own vector is explicitly invalidated
// after each topology change because it is the one node whose content
// can go stale while its orientation pointer still looks consistent.
func (s *Searcher) tryMoveSubtree(u, v *tree.Node, lnl float64) (moveOutcome, float64, error) {
	var out moveOutcome
	e := s.E
	t := e.T
	pendant := u.EdgeTo(v)
	if pendant == nil {
		return out, lnl, fmt.Errorf("search: %d and %d not adjacent", u.Index, v.Index)
	}
	// Point all valid vectors at the edit site.
	if err := e.Traverse(pendant); err != nil {
		return out, lnl, err
	}
	p, err := tree.PruneSubtree(t, u, v)
	if err != nil {
		return out, lnl, err
	}
	// Invalidation rule: any node whose adjacency set changes loses its
	// orientation. A merely stale *pointer* (orientation names a node
	// that is no longer a neighbor) is caught by the traversal check,
	// but topology edits can coincidentally restore a neighbor
	// relationship (e.g. regrafting onto an edge at the old pruning
	// site) while the node's other children changed — only explicit
	// invalidation covers that.
	orient := e.Orient()
	invalidate := func(nodes ...*tree.Node) {
		for _, n := range nodes {
			orient[n.Index] = nil
		}
	}
	invalidate(u, p.MergedEdge().N[0], p.MergedEdge().N[1])

	// Snapshot the orientation state of the pruned tree. Vectors that
	// still match it when the move concludes were computed pointing at
	// the edit site, so their subtrees exclude the entire edit region
	// and they remain valid for both the restored and the rearranged
	// topology. Vectors recomputed during candidate trials (orientation
	// differs from the snapshot) carry trial-state contents and must be
	// invalidated on exit.
	snap := append(tree.Orientation(nil), orient...)
	diffInvalidate := func() {
		for i := range orient {
			if orient[i] != snap[i] {
				orient[i] = nil
			}
		}
	}

	merged := p.MergedEdge()
	pendLen := pendant.Length
	candidates := tree.EdgesWithinRadius(t, merged, s.Opts.SPRRadius)

	bestLnl := lnl
	var bestEdge *tree.Edge
	for _, g := range candidates {
		if g == merged {
			continue // re-creates the original topology
		}
		gx, gy := g.N[0], g.N[1]
		if err := p.Regraft(g); err != nil {
			return out, lnl, err
		}
		invalidate(u, gx, gy)
		out.tested++
		// Lazy evaluation: optimise only the insertion (pendant) branch.
		trial, err := e.OptimizeBranch(pendant)
		if err != nil {
			return out, lnl, err
		}
		if trial > bestLnl {
			bestLnl = trial
			bestEdge = g
		}
		pendant.Length = pendLen
		if err := p.Ungraft(); err != nil {
			return out, lnl, err
		}
		invalidate(u, gx, gy)
	}

	if bestEdge == nil || bestLnl < lnl+s.Opts.Epsilon {
		// No improvement: restore and leave.
		if err := p.Restore(); err != nil {
			return out, lnl, err
		}
		diffInvalidate()
		invalidate(u, merged.N[0], merged.N[1])
		return out, lnl, nil
	}

	// Apply the best move permanently and polish the three branches at
	// the insertion point.
	bx, by := bestEdge.N[0], bestEdge.N[1]
	if err := p.Regraft(bestEdge); err != nil {
		return out, lnl, err
	}
	diffInvalidate()
	invalidate(u, bx, by)
	newLnl := bestLnl
	for _, adj := range u.Adj {
		newLnl, err = e.OptimizeBranch(adj)
		if err != nil {
			return out, lnl, err
		}
	}
	out.applied = true
	return out, newLnl, nil
}
