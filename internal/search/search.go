// Package search implements a RAxML-style Maximum-Likelihood tree
// search on top of the plf engine: iterated branch-length smoothing
// (Newton-Raphson per branch), lazy subtree-pruning-regrafting with a
// bounded rearrangement radius (RAxML's "Lazy SPR", re-optimising only
// the insertion branch per candidate and the three affected branches on
// acceptance), and Γ-shape optimisation by Brent's method.
//
// The search is deterministic given the starting tree — the property
// the paper uses as its correctness criterion (§4.1): under any
// replacement strategy and any memory fraction f, the out-of-core runs
// must return exactly the tree and log-likelihood of the standard run.
//
// The package is also the workload generator for the paper's Figures
// 2-4: its access pattern (branch smoothing hammering two vectors,
// lazy SPR touching small neighborhoods) is what produces the low miss
// rates the paper reports (§4.2).
package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"oocphylo/internal/mathx"
	"oocphylo/internal/plf"
	"oocphylo/internal/tree"
)

// Options tunes the search.
type Options struct {
	// SPRRadius bounds the regraft scan around each pruning site in
	// node-distance (RAxML's rearrangement setting). Default 5.
	SPRRadius int
	// MaxRounds caps the number of SPR improvement rounds. Default 10.
	MaxRounds int
	// Epsilon is the minimum log-likelihood gain that counts as an
	// improvement. Default 0.01.
	Epsilon float64
	// SmoothPasses caps the branch-length smoothing sweeps per call.
	// Default 4.
	SmoothPasses int
	// OptimizeModel also optimises the Γ shape parameter between rounds
	// (requires the engine's model to have >= 2 rate categories).
	OptimizeModel bool
	// RoundCallback, when non-nil, runs after every completed SPR round
	// with the resumable search position (checkpointing hook). A
	// returned error aborts the search.
	RoundCallback func(p Progress) error
	// Resume, when non-nil, continues a previous search from the given
	// round-boundary position instead of starting fresh: the initial
	// branch smoothing and Γ optimisation are skipped (they already
	// happened before the checkpoint, and re-running them would perturb
	// branch lengths and diverge from the original trajectory), and the
	// round loop starts at Resume.Round. Given the tree, model and
	// vector state captured at the same boundary, the resumed run's
	// final tree and log-likelihood are bit-identical to an
	// uninterrupted run's.
	Resume *Progress
}

// Progress is a resumable snapshot of the search position at a safe
// boundary. Round counts completed SPR rounds in absolute terms
// (carried across resumes), so a Progress can be fed back through
// Options.Resume.
type Progress struct {
	// Round is the number of completed SPR rounds; a resumed search
	// starts its round loop here.
	Round int
	// LnL is the log-likelihood at the boundary.
	LnL float64
	// StartLnL is Result.StartLnL of the original (pre-resume) run.
	StartLnL float64
	// Alpha is the last optimised Γ shape, 0 when never optimised.
	Alpha float64
	// LastImproved is the last round whose SPR sweep improved the
	// likelihood by at least Epsilon.
	LastImproved int
	// MovesApplied and MovesTested are cumulative across resumes.
	MovesApplied, MovesTested int
}

// Interrupted reports a search stopped by its context at a safe
// boundary: the tree is structurally consistent (no pruned subtree is
// dangling) and Progress describes the position the caller may
// checkpoint. It wraps the context's error, so
// errors.Is(err, context.Canceled) still matches.
type Interrupted struct {
	// Progress is the resumable position at the abort boundary. A
	// mid-round abort reports the current round as not yet completed:
	// resuming re-runs that round's sweep over the partially improved
	// tree (sound, though not bit-identical to an uninterrupted run —
	// only round-boundary checkpoints are).
	Progress Progress
	err      error
}

// Error implements error.
func (e *Interrupted) Error() string {
	return fmt.Sprintf("search: interrupted at round %d (lnl %.6f): %v",
		e.Progress.Round, e.Progress.LnL, e.err)
}

// Unwrap exposes the underlying context error.
func (e *Interrupted) Unwrap() error { return e.err }

func (o *Options) fill() {
	if o.SPRRadius <= 0 {
		o.SPRRadius = 5
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 10
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.01
	}
	if o.SmoothPasses <= 0 {
		o.SmoothPasses = 4
	}
}

// Result reports what the search did.
type Result struct {
	// LnL is the final log-likelihood.
	LnL float64
	// StartLnL is the log-likelihood of the starting tree after initial
	// branch smoothing.
	StartLnL float64
	// Rounds is the number of SPR rounds executed.
	Rounds int
	// AcceptedMoves counts applied SPR rearrangements.
	AcceptedMoves int
	// TestedMoves counts evaluated candidate insertions.
	TestedMoves int
	// Alpha is the final Γ shape (NaN when not optimised).
	Alpha float64
	// Final is the resumable position at normal completion. Feeding it
	// back through Options.Resume re-runs at most one non-improving
	// sweep and converges to the identical tree and likelihood, so a
	// completion checkpoint is as trustworthy as a round-boundary one.
	Final Progress
}

// Searcher drives an ML search over one engine.
type Searcher struct {
	E    *plf.Engine
	Opts Options
	// sobs holds the observability instruments (see obs.go); the zero
	// value means uninstrumented.
	sobs searchObs
}

// New returns a Searcher with filled-in defaults.
func New(e *plf.Engine, opts Options) *Searcher {
	opts.fill()
	return &Searcher{E: e, Opts: opts}
}

// SmoothBranches optimises every branch length, repeating up to passes
// sweeps or until a sweep improves the log-likelihood by less than eps.
// Branches are visited in canonical depth-first order, like RAxML's
// smoothTree: consecutive branches share a node, so each partial
// traversal touches only a couple of vectors — the access locality the
// paper's miss rates depend on (§4.2). The order (and the evaluation
// anchor) is canonical rather than index-based so a resumed run smooths
// in exactly the sequence the uninterrupted run would have. Returns
// the final lnL.
func (s *Searcher) SmoothBranches(passes int, eps float64) (float64, error) {
	t := s.E.T
	order, _ := canonicalOrder(t)
	lnl, err := s.E.LogLikelihoodAt(order[0])
	if err != nil {
		return 0, err
	}
	for pass := 0; pass < passes; pass++ {
		before := lnl
		for _, e := range order {
			lnl, err = s.E.OptimizeBranch(e)
			if err != nil {
				return 0, err
			}
		}
		if lnl-before < eps {
			break
		}
	}
	return lnl, nil
}

// DFSEdges returns all branches in depth-first visitation order
// starting from the tree's first edge. The order is deterministic.
func DFSEdges(t *tree.Tree) []*tree.Edge {
	out := make([]*tree.Edge, 0, len(t.Edges))
	seen := make([]bool, len(t.Edges))
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		for _, e := range n.Adj {
			if seen[e.Index] {
				continue
			}
			seen[e.Index] = true
			out = append(out, e)
			walk(e.Other(n))
		}
	}
	walk(t.Edges[0].N[0])
	walk(t.Edges[0].N[1])
	return out
}

// OptimizeAlpha Brent-optimises the Γ shape parameter in [0.02, 100].
// Every trial re-discretises the rates and requires a full traversal —
// the paper's §4.3 rationale for its full-traversal benchmark workload.
func (s *Searcher) OptimizeAlpha() (float64, float64, error) {
	m := s.E.M
	if m.Cats() < 2 {
		return 0, 0, errors.New("search: alpha optimisation needs >= 2 rate categories")
	}
	ncat := m.Cats()
	// The canonical anchor keeps every trial evaluation bit-identical
	// between an uninterrupted run and one resumed from a checkpoint
	// (Edges[0] names a different branch in a re-parsed tree).
	at := anchorEdge(s.E.T)
	eval := func(alpha float64) float64 {
		if err := m.SetGamma(alpha, ncat); err != nil {
			return math.Inf(1)
		}
		s.E.InvalidateAll()
		lnl, err := s.E.LogLikelihoodAt(at)
		if err != nil {
			return math.Inf(1)
		}
		return -lnl
	}
	start := m.Alpha
	if math.IsInf(start, 0) || start <= 0 {
		start = 1
	}
	alpha, neg, err := mathx.Brent(eval, 0.02, 100, 1e-4, 60)
	if err != nil {
		return 0, 0, err
	}
	// Leave the model at the optimum.
	if err := m.SetGamma(alpha, ncat); err != nil {
		return 0, 0, err
	}
	s.E.InvalidateAll()
	if _, err := s.E.LogLikelihoodAt(at); err != nil {
		return 0, 0, err
	}
	return alpha, -neg, nil
}

// Run executes the full hill climb: initial smoothing, then SPR rounds
// until no move improves by Epsilon or MaxRounds is hit.
func (s *Searcher) Run() (*Result, error) { return s.RunCtx(context.Background()) }

// RunCtx is Run with cooperative cancellation: once ctx is cancelled
// the search stops at the next safe boundary (a round start, or a
// junction boundary inside a sweep — points where the tree is
// structurally consistent) and returns the partial Result together
// with an *Interrupted error carrying the resumable Progress. The
// engine should not carry its own context when interrupt-and-
// checkpoint matters: an engine-level abort can fire mid-surgery,
// where the tree is not in a checkpointable state.
func (s *Searcher) RunCtx(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := &Result{Alpha: math.NaN()}
	// Canonical layout at every boundary: a resumed run re-parses its
	// tree, and parse order differs from the mutation history an
	// uninterrupted run carries. Likelihood evaluation is endpoint-slot-
	// sensitive in floating point, so both runs must re-converge to one
	// representation here and at each round top for resumes to be
	// bit-identical.
	tree.Canonicalize(s.E.T)
	var lnl float64
	startRound, lastImproved := 0, 0
	if r := s.Opts.Resume; r != nil {
		startRound = r.Round
		lastImproved = r.LastImproved
		lnl = r.LnL
		res.StartLnL = r.StartLnL
		res.AcceptedMoves = r.MovesApplied
		res.TestedMoves = r.MovesTested
		if r.Alpha != 0 {
			res.Alpha = r.Alpha
		}
		s.sobs.lnl.Set(lnl)
	} else {
		var err error
		lnl, err = s.SmoothBranches(s.Opts.SmoothPasses, s.Opts.Epsilon)
		if err != nil {
			return nil, err
		}
		res.StartLnL = lnl
		s.sobs.lnl.Set(lnl)
		if s.Opts.OptimizeModel && s.E.M.Cats() >= 2 {
			alpha, l, err := s.OptimizeAlpha()
			if err != nil {
				return nil, err
			}
			res.Alpha = alpha
			lnl = l
		}
	}
	completed := startRound
	for round := startRound; round < s.Opts.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			res.LnL = lnl
			return res, &Interrupted{Progress: s.progress(res, round, lnl, lastImproved), err: err}
		}
		tree.Canonicalize(s.E.T)
		res.Rounds++
		var roundStart time.Time
		testedBefore := res.TestedMoves
		if s.sobs.on {
			roundStart = time.Now()
		}
		improved, newLnl, err := s.sprRound(ctx, lnl, res)
		if err != nil {
			res.LnL = newLnl
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// A junction-boundary abort: the current round is not
				// complete, so the resumable position names it as the
				// round to re-run.
				return res, &Interrupted{Progress: s.progress(res, round, newLnl, lastImproved), err: err}
			}
			return res, err
		}
		lnl = newLnl
		completed = round + 1
		s.noteRound(res.Rounds, res, lnl, roundStart, testedBefore)
		if !improved {
			break
		}
		lastImproved = round + 1
		lnl, err = s.SmoothBranches(s.Opts.SmoothPasses, s.Opts.Epsilon)
		if err != nil {
			res.LnL = lnl
			return res, err
		}
		if s.Opts.OptimizeModel && s.E.M.Cats() >= 2 {
			alpha, l, err := s.OptimizeAlpha()
			if err != nil {
				res.LnL = lnl
				return res, err
			}
			res.Alpha = alpha
			if l > lnl {
				lnl = l
			}
		}
		if s.Opts.RoundCallback != nil {
			if err := s.Opts.RoundCallback(s.progress(res, round+1, lnl, lastImproved)); err != nil {
				res.LnL = lnl
				return res, err
			}
		}
		s.sobs.lnl.Set(lnl)
	}
	res.LnL = lnl
	res.Final = s.progress(res, completed, lnl, lastImproved)
	s.sobs.lnl.Set(lnl)
	return res, nil
}

// progress assembles the resumable position for round boundaries and
// interrupts. round is the absolute count of completed rounds.
func (s *Searcher) progress(res *Result, round int, lnl float64, lastImproved int) Progress {
	alpha := res.Alpha
	if math.IsNaN(alpha) {
		alpha = 0
	}
	return Progress{
		Round:        round,
		LnL:          lnl,
		StartLnL:     res.StartLnL,
		Alpha:        alpha,
		LastImproved: lastImproved,
		MovesApplied: res.AcceptedMoves,
		MovesTested:  res.TestedMoves,
	}
}

// sprRound tries to improve the tree by one sweep of lazy SPR moves
// over every (junction, subtree) pair, applying each improving move
// immediately (greedy, RAxML-style). Cancellation is honoured between
// junctions — the points inside a sweep where the tree is whole — and
// returns the likelihood of the partially improved tree.
func (s *Searcher) sprRound(ctx context.Context, lnl float64, res *Result) (bool, float64, error) {
	t := s.E.T
	improvedAny := false
	// Junctions are visited in canonical order — a function of topology
	// and tip names only, so an uninterrupted run and a checkpoint-
	// resumed run sweep in the same sequence. The junction list is fixed
	// at sweep start (applied moves do not add or remove junctions);
	// neighbor order is re-derived per junction because applied moves do
	// change it, identically in every run that reached the same tree.
	_, junctions := canonicalOrder(t)
	for _, u := range junctions {
		if err := ctx.Err(); err != nil {
			return improvedAny, lnl, fmt.Errorf("search: sweep interrupted: %w", err)
		}
		for side := 0; side < 3; side++ {
			// Fresh lookup each iteration: an applied move changes u's
			// neighbor set, and the canonical order tracks the current
			// tree (identically in every run that reached it).
			v := canonicalNeighbors(t, u)[side]
			better, newLnl, err := s.tryMoveSubtree(u, v, lnl)
			if err != nil {
				return improvedAny, lnl, err
			}
			res.TestedMoves += better.tested
			if better.applied {
				res.AcceptedMoves++
				improvedAny = true
				lnl = newLnl
			}
		}
	}
	return improvedAny, lnl, nil
}

type moveOutcome struct {
	applied bool
	tested  int
}

// tryMoveSubtree prunes the subtree hanging from junction u via v,
// scans insertion branches within the radius, and either applies the
// best improving insertion or restores the original topology.
//
// Vector-validity discipline (see the engine docs): a traversal is run
// at the pendant edge before pruning so every valid vector points at
// the edit site; the junction's own vector is explicitly invalidated
// after each topology change because it is the one node whose content
// can go stale while its orientation pointer still looks consistent.
func (s *Searcher) tryMoveSubtree(u, v *tree.Node, lnl float64) (moveOutcome, float64, error) {
	var out moveOutcome
	e := s.E
	t := e.T
	pendant := u.EdgeTo(v)
	if pendant == nil {
		return out, lnl, fmt.Errorf("search: %d and %d not adjacent", u.Index, v.Index)
	}
	// Point all valid vectors at the edit site.
	if err := e.Traverse(pendant); err != nil {
		return out, lnl, err
	}
	p, err := tree.PruneSubtree(t, u, v)
	if err != nil {
		return out, lnl, err
	}
	// Invalidation rule: any node whose adjacency set changes loses its
	// orientation. A merely stale *pointer* (orientation names a node
	// that is no longer a neighbor) is caught by the traversal check,
	// but topology edits can coincidentally restore a neighbor
	// relationship (e.g. regrafting onto an edge at the old pruning
	// site) while the node's other children changed — only explicit
	// invalidation covers that.
	orient := e.Orient()
	invalidate := func(nodes ...*tree.Node) {
		for _, n := range nodes {
			orient[n.Index] = nil
		}
	}
	invalidate(u, p.MergedEdge().N[0], p.MergedEdge().N[1])

	// Snapshot the orientation state of the pruned tree. Vectors that
	// still match it when the move concludes were computed pointing at
	// the edit site, so their subtrees exclude the entire edit region
	// and they remain valid for both the restored and the rearranged
	// topology. Vectors recomputed during candidate trials (orientation
	// differs from the snapshot) carry trial-state contents and must be
	// invalidated on exit.
	snap := append(tree.Orientation(nil), orient...)
	diffInvalidate := func() {
		for i := range orient {
			if orient[i] != snap[i] {
				orient[i] = nil
			}
		}
	}

	merged := p.MergedEdge()
	pendLen := pendant.Length
	candidates := tree.EdgesWithinRadius(t, merged, s.Opts.SPRRadius)

	bestLnl := lnl
	var bestEdge *tree.Edge
	for _, g := range candidates {
		if g == merged {
			continue // re-creates the original topology
		}
		gx, gy := g.N[0], g.N[1]
		if err := p.Regraft(g); err != nil {
			return out, lnl, err
		}
		invalidate(u, gx, gy)
		out.tested++
		// Lazy evaluation: optimise only the insertion (pendant) branch.
		trial, err := e.OptimizeBranch(pendant)
		if err != nil {
			return out, lnl, err
		}
		if trial > bestLnl {
			bestLnl = trial
			bestEdge = g
		}
		pendant.Length = pendLen
		if err := p.Ungraft(); err != nil {
			return out, lnl, err
		}
		invalidate(u, gx, gy)
	}

	if bestEdge == nil || bestLnl < lnl+s.Opts.Epsilon {
		// No improvement: restore and leave.
		if err := p.Restore(); err != nil {
			return out, lnl, err
		}
		diffInvalidate()
		invalidate(u, merged.N[0], merged.N[1])
		return out, lnl, nil
	}

	// Apply the best move permanently and polish the three branches at
	// the insertion point.
	bx, by := bestEdge.N[0], bestEdge.N[1]
	if err := p.Regraft(bestEdge); err != nil {
		return out, lnl, err
	}
	diffInvalidate()
	invalidate(u, bx, by)
	newLnl := bestLnl
	// The polish is a sequential coordinate ascent over u's three
	// branches: canonical order, or a resumed run polishes in a
	// different sequence and lands on different branch lengths.
	for _, adj := range canonicalAdjEdges(t, u) {
		newLnl, err = e.OptimizeBranch(adj)
		if err != nil {
			return out, lnl, err
		}
	}
	out.applied = true
	return out, newLnl, nil
}
