package search

import (
	"math"

	"oocphylo/internal/tree"
)

// Nearest-neighbor-interchange hill climbing: a cheaper, more local
// companion to lazy SPR. Every internal edge admits two alternative
// topologies; each is evaluated with the interchange edge's length
// re-optimised, and improvements are applied greedily. NNI moves touch
// an even smaller vector neighborhood than SPR, so under the
// out-of-core manager they exhibit the strongest access locality of
// any rearrangement operator.

// NNIRound tries both interchanges across every internal edge once.
// It returns whether any move improved the likelihood by at least
// Epsilon, and the resulting likelihood.
func (s *Searcher) NNIRound(lnl float64) (bool, float64, error) {
	t := s.E.T
	improved := false
	// Collect internal edges up front; the set of internal edges is
	// stable under NNI (only endpoints' adjacencies change).
	var internal []*tree.Edge
	for _, e := range t.Edges {
		if !e.N[0].IsTip() && !e.N[1].IsTip() {
			internal = append(internal, e)
		}
	}
	orient := s.E.Orient()
	for _, e := range internal {
		for variant := 0; variant < 2; variant++ {
			// Point all valid vectors at the edit site, then swap.
			if err := s.E.Traverse(e); err != nil {
				return false, 0, err
			}
			u, v := e.N[0], e.N[1]
			savedLen := e.Length
			undo, err := tree.NNI(t, e, variant, 0)
			if err != nil {
				return false, 0, err
			}
			orient[u.Index] = nil
			orient[v.Index] = nil
			trial, err := s.E.OptimizeBranch(e)
			if err != nil {
				return false, 0, err
			}
			if trial > lnl+s.Opts.Epsilon {
				lnl = trial
				improved = true
				continue // keep the move (and its optimised length)
			}
			undo()
			e.Length = savedLen
			orient[u.Index] = nil
			orient[v.Index] = nil
		}
	}
	return improved, lnl, nil
}

// RunNNI executes NNI rounds (with branch smoothing between rounds)
// until no move improves the likelihood or MaxRounds is reached.
func (s *Searcher) RunNNI() (*Result, error) {
	res := &Result{Alpha: math.NaN()}
	lnl, err := s.SmoothBranches(s.Opts.SmoothPasses, s.Opts.Epsilon)
	if err != nil {
		return nil, err
	}
	res.StartLnL = lnl
	for round := 0; round < s.Opts.MaxRounds; round++ {
		res.Rounds++
		improved, newLnl, err := s.NNIRound(lnl)
		if err != nil {
			return nil, err
		}
		lnl = newLnl
		if !improved {
			break
		}
		res.AcceptedMoves++ // at least one move this round
		lnl, err = s.SmoothBranches(s.Opts.SmoothPasses, s.Opts.Epsilon)
		if err != nil {
			return nil, err
		}
	}
	res.LnL = lnl
	return res, nil
}
