package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulMatIdentity(t *testing.T) {
	n := 4
	a := []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	id := make([]float64, n*n)
	Identity(id, n)
	c := make([]float64, n*n)
	MulMat(c, a, id, n)
	if MaxAbsDiff(a, c, n) != 0 {
		t.Error("A*I != A")
	}
	MulMat(c, id, a, n)
	if MaxAbsDiff(a, c, n) != 0 {
		t.Error("I*A != A")
	}
}

func TestMulMatKnown(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	c := make([]float64, 4)
	MulMat(c, a, b, 2)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
}

func TestMulMatVec(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	x := []float64{1, 0, -1}
	y := make([]float64, 3)
	MulMatVec(y, a, x, 3)
	want := []float64{-2, -2, -2}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	at := make([]float64, 9)
	Transpose(at, a, 3)
	back := make([]float64, 9)
	Transpose(back, at, 3)
	if MaxAbsDiff(a, back, 3) != 0 {
		t.Error("double transpose must be identity")
	}
	if at[0*3+1] != a[1*3+0] {
		t.Error("transpose wrong")
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	a := []float64{3, 0, 0, 0, -1, 0, 0, 0, 7}
	vals, v, err := SymmetricEigen(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 3, 7}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Errorf("vals = %v, want %v", vals, want)
		}
	}
	checkDecomposition(t, a, vals, v, 3, 1e-12)
}

func TestSymmetricEigen2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := []float64{2, 1, 1, 2}
	vals, v, err := SymmetricEigen(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Errorf("vals = %v, want [1 3]", vals)
	}
	checkDecomposition(t, a, vals, v, 2, 1e-12)
}

func TestSymmetricEigen1x1(t *testing.T) {
	vals, v, err := SymmetricEigen([]float64{5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 5 || v[0] != 1 {
		t.Errorf("1x1 eigen wrong: %v %v", vals, v)
	}
}

func TestSymmetricEigenRejectsBadInput(t *testing.T) {
	if _, _, err := SymmetricEigen([]float64{1, 2}, 3); err == nil {
		t.Error("short slice must error")
	}
	if _, _, err := SymmetricEigen([]float64{math.NaN(), 0, 0, 1}, 2); err == nil {
		t.Error("NaN input must error")
	}
	if _, _, err := SymmetricEigen([]float64{math.Inf(1), 0, 0, 1}, 2); err == nil {
		t.Error("Inf input must error")
	}
}

// checkDecomposition verifies A ≈ V diag(vals) Vᵀ and VᵀV ≈ I.
func checkDecomposition(t *testing.T, a, vals, v []float64, n int, tol float64) {
	t.Helper()
	// Orthonormality.
	vt := make([]float64, n*n)
	Transpose(vt, v, n)
	prod := make([]float64, n*n)
	MulMat(prod, vt, v, n)
	id := make([]float64, n*n)
	Identity(id, n)
	if d := MaxAbsDiff(prod, id, n); d > tol {
		t.Errorf("VᵀV deviates from I by %v", d)
	}
	// Reconstruction.
	vd := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			vd[i*n+j] = v[i*n+j] * vals[j]
		}
	}
	rec := make([]float64, n*n)
	MulMat(rec, vd, vt, n)
	if d := MaxAbsDiff(rec, a, n); d > tol*10 {
		t.Errorf("reconstruction deviates by %v", d)
	}
}

func TestSymmetricEigenRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 2 + r.Intn(19) // up to 20x20, the protein case
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				x := r.NormFloat64() * 10
				a[i*n+j] = x
				a[j*n+i] = x
			}
		}
		vals, v, err := SymmetricEigen(a, n)
		if err != nil {
			return false
		}
		// Sorted eigenvalues.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1] {
				return false
			}
		}
		// Trace preserved.
		trA, trL := 0.0, 0.0
		for i := 0; i < n; i++ {
			trA += a[i*n+i]
			trL += vals[i]
		}
		if math.Abs(trA-trL) > 1e-8*(1+math.Abs(trA)) {
			return false
		}
		// A v_k = λ_k v_k column-wise.
		col := make([]float64, n)
		av := make([]float64, n)
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				col[i] = v[i*n+k]
			}
			MulMatVec(av, a, col, n)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[k]*col[i]) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSymmetricEigen4(b *testing.B)  { benchEigen(b, 4) }
func BenchmarkSymmetricEigen20(b *testing.B) { benchEigen(b, 20) }

func benchEigen(b *testing.B, n int) {
	r := rand.New(rand.NewSource(7))
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			x := r.NormFloat64()
			a[i*n+j] = x
			a[j*n+i] = x
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SymmetricEigen(a, n); err != nil {
			b.Fatal(err)
		}
	}
}
