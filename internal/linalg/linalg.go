// Package linalg implements the small dense linear algebra the
// likelihood models need: a cyclic-Jacobi eigensolver for real symmetric
// matrices and a handful of matrix helpers. Matrices are stored
// row-major in flat []float64 slices; the dimensions involved are tiny
// (4 states for DNA, 20 for protein), so simplicity and numerical
// robustness beat asymptotic cleverness.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotConverged is returned by SymmetricEigen when the Jacobi sweeps
// fail to annihilate the off-diagonal mass within the sweep budget.
// For the matrix sizes used here this indicates NaN/Inf inputs.
var ErrNotConverged = errors.New("linalg: Jacobi iteration did not converge")

// MulMat computes the n×n matrix product C = A·B. C must not alias A or B.
func MulMat(c, a, b []float64, n int) {
	for i := 0; i < n; i++ {
		ci := c[i*n : (i+1)*n]
		for k := range ci {
			ci[k] = 0
		}
		ai := a[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			aik := ai[k]
			if aik == 0 {
				continue
			}
			bk := b[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				ci[j] += aik * bk[j]
			}
		}
	}
}

// MulMatVec computes the matrix-vector product y = A·x for an n×n A.
// y must not alias x.
func MulMatVec(y, a, x []float64, n int) {
	for i := 0; i < n; i++ {
		s := 0.0
		ai := a[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			s += ai[j] * x[j]
		}
		y[i] = s
	}
}

// Transpose writes Aᵀ into dst. dst must not alias a.
func Transpose(dst, a []float64, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dst[j*n+i] = a[i*n+j]
		}
	}
}

// Identity writes the n×n identity into dst.
func Identity(dst []float64, n int) {
	for i := range dst[:n*n] {
		dst[i] = 0
	}
	for i := 0; i < n; i++ {
		dst[i*n+i] = 1
	}
}

// MaxAbsDiff returns max_ij |a_ij - b_ij| over the first n*n entries.
func MaxAbsDiff(a, b []float64, n int) float64 {
	m := 0.0
	for i := 0; i < n*n; i++ {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// SymmetricEigen computes the eigendecomposition A = V·diag(λ)·Vᵀ of a
// real symmetric n×n matrix using the cyclic Jacobi method. The input is
// not modified. Column k of the returned V (i.e. v[i*n+k] over i) is the
// unit eigenvector for eigenvalue values[k]. Eigen pairs are sorted by
// ascending eigenvalue. Symmetry is enforced by averaging a with aᵀ,
// so tiny asymmetries from upstream floating-point noise are harmless.
func SymmetricEigen(a []float64, n int) (values []float64, v []float64, err error) {
	if len(a) < n*n {
		return nil, nil, fmt.Errorf("linalg: matrix slice too short: %d < %d", len(a), n*n)
	}
	w := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := 0.5 * (a[i*n+j] + a[j*n+i])
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, nil, fmt.Errorf("linalg: non-finite entry at (%d,%d)", i, j)
			}
			w[i*n+j] = x
		}
	}
	v = make([]float64, n*n)
	Identity(v, n)
	values = make([]float64, n)

	if n == 1 {
		values[0] = w[0]
		return values, v, nil
	}

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w[i*n+j] * w[i*n+j]
			}
		}
		if off < 1e-30 {
			for i := 0; i < n; i++ {
				values[i] = w[i*n+i]
			}
			sortEigen(values, v, n)
			return values, v, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w[p*n+q]
				if apq == 0 {
					continue
				}
				app := w[p*n+p]
				aqq := w[q*n+q]
				// Rotation angle from the standard Jacobi formulas.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e150 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				tau := s / (1 + c)

				w[p*n+p] = app - t*apq
				w[q*n+q] = aqq + t*apq
				w[p*n+q] = 0
				w[q*n+p] = 0
				for i := 0; i < n; i++ {
					if i != p && i != q {
						aip := w[i*n+p]
						aiq := w[i*n+q]
						w[i*n+p] = aip - s*(aiq+tau*aip)
						w[i*n+q] = aiq + s*(aip-tau*aiq)
						w[p*n+i] = w[i*n+p]
						w[q*n+i] = w[i*n+q]
					}
				}
				for i := 0; i < n; i++ {
					vip := v[i*n+p]
					viq := v[i*n+q]
					v[i*n+p] = vip - s*(viq+tau*vip)
					v[i*n+q] = viq + s*(vip-tau*viq)
				}
			}
		}
	}
	return nil, nil, ErrNotConverged
}

func sortEigen(values, v []float64, n int) {
	// Insertion sort over eigen pairs; n <= 20, cost irrelevant.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && values[j] < values[j-1]; j-- {
			values[j], values[j-1] = values[j-1], values[j]
			for r := 0; r < n; r++ {
				v[r*n+j], v[r*n+j-1] = v[r*n+j-1], v[r*n+j]
			}
		}
	}
}
