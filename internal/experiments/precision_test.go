package experiments

import (
	"strings"
	"testing"
)

func TestRunPrecisionAblation(t *testing.T) {
	cfg := PrecisionAblationConfig{Taxa: 24, Sites: 400, Seed: 9, Workers: 2}
	res, err := RunPrecisionAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RelErr > PrecisionAccuracyBudget {
		t.Fatalf("relative error %v over budget", res.RelErr)
	}
	if res.VecBytes32*2 != res.VecBytes64 && res.VecBytes32*2 != res.VecBytes64+8 {
		t.Fatalf("store bytes not halved: %d vs %d", res.VecBytes32, res.VecBytes64)
	}
	if res.Kernel != "dna4" {
		t.Fatalf("DNA f32 run used kernel %q", res.Kernel)
	}
	var sb strings.Builder
	WritePrecisionAblationTable(&sb, res, cfg)
	out := sb.String()
	for _, want := range []string{"f64", "f32", "store bytes/vector", "bit-identical"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRunPrecisionAblationAA(t *testing.T) {
	if testing.Short() {
		t.Skip("protein ablation is slow")
	}
	res, err := RunPrecisionAblation(PrecisionAblationConfig{Taxa: 16, Sites: 120, Seed: 3, AA: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != "aa20" {
		t.Fatalf("protein f32 run used kernel %q", res.Kernel)
	}
}

func TestRunKernelAblationAA(t *testing.T) {
	cfg := KernelAblationConfig{Taxa: 12, Sites: 120, Seed: 5, Traversals: 2, AA: true}
	res, err := RunKernelAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != "aa20" {
		t.Fatalf("protein ablation ran kernel %q, want aa20", res.Kernel)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 phase rows, got %d", len(res.Rows))
	}
	var sb strings.Builder
	WriteKernelAblationTable(&sb, res, cfg)
	if !strings.Contains(sb.String(), "protein") || !strings.Contains(sb.String(), "aa20") {
		t.Fatalf("table must name the protein dataset and kernel:\n%s", sb.String())
	}
}
