package experiments

import (
	"strings"
	"testing"
)

// TestBatchingAblation is the tentpole's throughput acceptance: N ≥ 8
// concurrent requests coalesced into shared engine passes must beat N
// independent fresh passes in engine execution time, at bit-identical
// likelihoods. The speedup bound is deliberately loose (the mechanism
// saves N-1 full traversals, so the real ratio is far higher); the
// bit-identity check is exact.
func TestBatchingAblation(t *testing.T) {
	res, err := RunBatchingAblation(BatchingAblationConfig{
		Taxa: 48, Sites: 300, Seed: 11, Requests: 8,
		DataDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("RunBatchingAblation: %v", err)
	}
	if res.Requests != 8 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.LnLBits == "" {
		t.Fatal("no shared lnL bit pattern recorded")
	}
	if res.CoalescedBatches >= res.Requests {
		t.Errorf("no coalescing: %d batches for %d concurrent requests", res.CoalescedBatches, res.Requests)
	}
	if res.Speedup <= 1.2 {
		t.Errorf("coalescing speedup %.2fx, want > 1.2x (independent %v vs coalesced %v over %d batches)",
			res.Speedup, res.IndependentExec, res.CoalescedExec, res.CoalescedBatches)
	}

	var sb strings.Builder
	WriteBatchingTable(&sb, res)
	out := sb.String()
	if !strings.Contains(out, "| independent | 8 | 8 |") || !strings.Contains(out, "Speedup:") {
		t.Errorf("table malformed:\n%s", out)
	}
}
