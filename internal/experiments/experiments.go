// Package experiments contains one driver per figure of the paper's
// evaluation (§4), shared by cmd/figures and the top-level benchmark
// suite:
//
//   - Figures 2 and 3: vector miss rate and (with read skipping) read
//     rate during a tree search, for the four replacement strategies at
//     memory fractions f ∈ {0.25, 0.5, 0.75}.
//   - Figure 4: miss rate of the Random strategy as f is halved down to
//     five RAM slots.
//   - Figure 5: elapsed time of five full tree traversals, standard
//     version under (simulated) OS paging versus the out-of-core
//     version confined to a fixed RAM budget, as the ancestral-vector
//     footprint grows past physical memory.
//
// Paper-scale dimensions (1288/1908 taxa for Figures 2-4, 8192 taxa and
// 1-32 GB footprints for Figure 5) run in minutes; the defaults used by
// `go test -bench` are scaled down but preserve every ratio the figures
// turn on (the f values and the footprint/RAM over-subscription span).
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"oocphylo/internal/iosim"
	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/search"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
	"oocphylo/internal/vm"
)

// StrategyNames lists the paper's four replacement strategies in its
// plotting order.
var StrategyNames = []string{"Topological", "LFU", "RAND", "LRU"}

// NewStrategy instantiates a replacement strategy by name for a tree
// with numVectors ancestral vectors.
func NewStrategy(name string, numVectors int, t *tree.Tree, seed int64) (ooc.Strategy, error) {
	switch name {
	case "RAND":
		return ooc.NewRandom(rand.New(rand.NewSource(seed))), nil
	case "LRU":
		return ooc.NewLRU(numVectors), nil
	case "LFU":
		return ooc.NewLFU(numVectors), nil
	case "Topological":
		return ooc.NewTopological(t), nil
	}
	return nil, fmt.Errorf("experiments: unknown strategy %q", name)
}

// SearchWorkloadConfig describes the Figures 2-4 workload: an ML tree
// search on a simulated dataset of the paper's dimensions.
type SearchWorkloadConfig struct {
	// Taxa and Sites set the dataset dimensions (paper: 1288×1200 and
	// 1908×1424).
	Taxa, Sites int
	// Seed fixes dataset and starting tree.
	Seed int64
	// SPRRadius and Rounds bound the search effort.
	SPRRadius, Rounds int
	// GammaAlpha sets the simulated rate heterogeneity (Γ4 model, like
	// the paper's runs).
	GammaAlpha float64
}

func (c *SearchWorkloadConfig) fill() {
	if c.Taxa == 0 {
		c.Taxa = 128
	}
	if c.Sites == 0 {
		c.Sites = 200
	}
	if c.SPRRadius == 0 {
		c.SPRRadius = 5
	}
	if c.Rounds == 0 {
		c.Rounds = 2
	}
	if c.GammaAlpha == 0 {
		c.GammaAlpha = 0.8
	}
}

// MissRateResult is one point of Figures 2-4.
type MissRateResult struct {
	// Strategy is the replacement policy name.
	Strategy string
	// F is the fraction of vectors held in RAM; Slots the resulting m.
	F     float64
	Slots int
	// Stats are the manager's counters over the whole search.
	Stats ooc.Stats
	// LnL is the final likelihood (identical across strategies and f by
	// the paper's determinism argument — verified in tests).
	LnL float64
}

// runSearchWorkload runs the standard tree-search workload over an OOC
// manager with the given strategy and slot count and returns the
// counters.
func runSearchWorkload(cfg SearchWorkloadConfig, strategyName string, slots int, readSkip bool) (MissRateResult, error) {
	var res MissRateResult
	d, err := sim.NewDataset(sim.Config{
		Taxa: cfg.Taxa, Sites: cfg.Sites, GammaAlpha: cfg.GammaAlpha, Seed: cfg.Seed,
	})
	if err != nil {
		return res, err
	}
	names := make([]string, d.Tree.NumTips)
	for i := range names {
		names[i] = d.Tree.Nodes[i].Name
	}
	start, err := tree.RandomTopology(names, rand.New(rand.NewSource(cfg.Seed+1)), 0.05, 0.15)
	if err != nil {
		return res, err
	}
	vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
	strat, err := NewStrategy(strategyName, start.NumInner(), start, cfg.Seed+2)
	if err != nil {
		return res, err
	}
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors:   start.NumInner(),
		VectorLen:    vecLen,
		Slots:        slots,
		Strategy:     strat,
		ReadSkipping: readSkip,
		Store:        ooc.NewMemStore(start.NumInner(), vecLen),
	})
	if err != nil {
		return res, err
	}
	e, err := plf.New(start, d.Patterns, d.Model, mgr)
	if err != nil {
		return res, err
	}
	sr, err := search.New(e, search.Options{SPRRadius: cfg.SPRRadius, MaxRounds: cfg.Rounds}).Run()
	if err != nil {
		return res, err
	}
	res.Strategy = strategyName
	res.Slots = slots
	res.Stats = mgr.Stats()
	res.LnL = sr.LnL
	return res, nil
}

// RunFigure2 reproduces Figure 2 (and, with readSkip = true, Figure 3):
// the four strategies at the given memory fractions. Fractions default
// to the paper's {0.25, 0.50, 0.75}.
func RunFigure2(cfg SearchWorkloadConfig, fractions []float64, readSkip bool) ([]MissRateResult, error) {
	cfg.fill()
	if len(fractions) == 0 {
		fractions = []float64{0.25, 0.50, 0.75}
	}
	var out []MissRateResult
	for _, name := range StrategyNames {
		for _, f := range fractions {
			slots := ooc.SlotsForFraction(f, cfg.Taxa-2)
			r, err := runSearchWorkload(cfg, name, slots, readSkip)
			if err != nil {
				return nil, fmt.Errorf("strategy %s f=%v: %w", name, f, err)
			}
			r.F = f
			out = append(out, r)
		}
	}
	return out, nil
}

// RunFigure4 reproduces Figure 4: the Random strategy with the memory
// fraction halved from startF until only minSlots slots remain (the
// paper halts at five).
func RunFigure4(cfg SearchWorkloadConfig, startF float64, minSlots int) ([]MissRateResult, error) {
	cfg.fill()
	if startF == 0 {
		startF = 0.75
	}
	if minSlots < ooc.MinSlots {
		minSlots = 5 // the paper's smallest configuration
	}
	n := cfg.Taxa - 2
	var out []MissRateResult
	prevSlots := -1
	for f := startF; ; f /= 2 {
		slots := int(f*float64(n) + 0.5)
		if slots < minSlots {
			slots = minSlots
		}
		if slots == prevSlots {
			break
		}
		prevSlots = slots
		r, err := runSearchWorkload(cfg, "RAND", slots, false)
		if err != nil {
			return nil, err
		}
		r.F = f
		out = append(out, r)
		if slots == minSlots {
			break
		}
	}
	return out, nil
}

// WriteMissRateTable renders Figure 2/3/4 results as an aligned text
// table mirroring the paper's plots (one row per strategy×f).
func WriteMissRateTable(w io.Writer, results []MissRateResult, title string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s %7s %7s %10s %10s %10s %12s\n",
		"strategy", "f", "slots", "requests", "miss%", "read%", "lnL")
	sorted := append([]MissRateResult(nil), results...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Strategy != sorted[j].Strategy {
			return sorted[i].Strategy < sorted[j].Strategy
		}
		return sorted[i].F < sorted[j].F
	})
	for _, r := range sorted {
		fmt.Fprintf(w, "%-12s %7.4f %7d %10d %9.2f%% %9.2f%% %12.2f\n",
			r.Strategy, r.F, r.Slots, r.Stats.Requests,
			100*r.Stats.MissRate(), 100*r.Stats.ReadRate(), r.LnL)
	}
}

// Figure5Config describes the §4.3 real-test-case experiment.
type Figure5Config struct {
	// Taxa is the tree size (paper: 8192).
	Taxa int
	// Widths are the alignment widths to sweep; each implies an
	// ancestral-vector footprint of (Taxa-2)·8·4·cats·width bytes.
	Widths []int
	// RAMBytes is the machine's physical memory available to ancestral
	// vectors; the standard version pages against this budget (paper:
	// 2 GB machine).
	RAMBytes int64
	// OOCBytes is the out-of-core manager's slot budget (paper: the OOC
	// runs were confined to 1 GB via -L on the 2 GB machine). Defaults
	// to RAMBytes/2.
	OOCBytes int64
	// Traversals is the number of full tree traversals (paper: 5; the
	// -f z workload).
	Traversals int
	// Device models the swap/backing disk.
	Device iosim.Device
	// Seed fixes the simulated dataset.
	Seed int64
	// GammaAlpha sets rate heterogeneity (Γ4, as in the paper).
	GammaAlpha float64
	// Readahead is the paging simulator's readahead window.
	Readahead int
}

func (c *Figure5Config) fill() {
	if c.Taxa == 0 {
		// Fewer taxa but paper-proportioned vectors: at these widths each
		// ancestral vector spans hundreds of 4 KiB pages, like the
		// paper's 8192-taxon × multi-thousand-site datasets (a 10k-site
		// DNA Γ4 vector is 1.28 MB = 320 pages, §3.1).
		c.Taxa = 64
	}
	if c.RAMBytes == 0 {
		c.RAMBytes = 24 << 20
	}
	if c.OOCBytes == 0 {
		c.OOCBytes = c.RAMBytes / 2
	}
	if c.Traversals == 0 {
		c.Traversals = 5
	}
	if c.Device.Name == "" {
		c.Device = iosim.HDD()
	}
	if c.GammaAlpha == 0 {
		c.GammaAlpha = 0.8
	}
	if len(c.Widths) == 0 {
		// Footprint sweep crossing the RAM budget, mirroring the paper's
		// 1-32 GB on a 2 GB machine: from fits-in-RAM to ~16x over.
		c.Widths = []int{128, 256, 512, 1024, 2048, 4096}
	}
}

// Figure5Row is one x-position of Figure 5.
type Figure5Row struct {
	// Sites is the alignment width.
	Sites int
	// FootprintBytes is the total ancestral-vector memory requirement
	// (the figure's x axis).
	FootprintBytes int64
	// OverSubscription is FootprintBytes / RAMBytes.
	OverSubscription float64
	// StandardIO / OOCLRUIO / OOCRandIO are the modelled I/O times.
	StandardIO, OOCLRUIO, OOCRandIO time.Duration
	// StandardCompute etc. are the measured CPU times of the same
	// workload (identical numerics, so they differ only by noise).
	StandardCompute, OOCLRUCompute, OOCRandCompute time.Duration
	// MajorFaults is the paging simulator's fault count (the paper
	// reports page-fault counts rising from 346,861 to 902,489).
	MajorFaults int64
	// OOCLRUMisses / OOCRandMisses are the managers' vector misses.
	OOCLRUMisses, OOCRandMisses int64
	// LnLStandard and LnLOOC must match exactly (correctness guard).
	LnLStandard, LnLOOC float64
}

// StandardTotal returns modelled I/O plus measured compute.
func (r Figure5Row) StandardTotal() time.Duration { return r.StandardIO + r.StandardCompute }

// OOCLRUTotal returns modelled I/O plus measured compute.
func (r Figure5Row) OOCLRUTotal() time.Duration { return r.OOCLRUIO + r.OOCLRUCompute }

// OOCRandTotal returns modelled I/O plus measured compute.
func (r Figure5Row) OOCRandTotal() time.Duration { return r.OOCRandIO + r.OOCRandCompute }

// fullTraversalWorkload runs k full tree traversals plus an evaluation,
// returning the final log-likelihood and the measured compute time.
func fullTraversalWorkload(e *plf.Engine, t *tree.Tree, k int) (float64, time.Duration, error) {
	startT := time.Now()
	var lnl float64
	for i := 0; i < k; i++ {
		if err := e.FullTraversal(t.Edges[0]); err != nil {
			return 0, 0, err
		}
		var err error
		lnl, err = e.LogLikelihoodAt(t.Edges[0])
		if err != nil {
			return 0, 0, err
		}
	}
	return lnl, time.Since(startT), nil
}

// RunFigure5 reproduces Figure 5: for each alignment width, the same
// five-full-traversal workload is executed three times — standard
// storage over simulated OS paging, and out-of-core with LRU and with
// Random replacement under the same RAM budget — and each run's
// modelled I/O time is charged to the same disk model.
func RunFigure5(cfg Figure5Config) ([]Figure5Row, error) {
	cfg.fill()
	var out []Figure5Row
	for _, width := range cfg.Widths {
		row, err := runFigure5Row(cfg, width)
		if err != nil {
			return nil, fmt.Errorf("width %d: %w", width, err)
		}
		out = append(out, row)
	}
	return out, nil
}

func runFigure5Row(cfg Figure5Config, width int) (Figure5Row, error) {
	var row Figure5Row
	d, err := sim.NewDataset(sim.Config{
		Taxa: cfg.Taxa, Sites: width, GammaAlpha: cfg.GammaAlpha, Seed: cfg.Seed,
	})
	if err != nil {
		return row, err
	}
	vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
	n := d.Tree.NumInner()
	row.Sites = width
	row.FootprintBytes = int64(n) * int64(vecLen) * 8
	row.OverSubscription = float64(row.FootprintBytes) / float64(cfg.RAMBytes)

	// Standard version under simulated paging.
	{
		var clock iosim.Clock
		prov, err := vm.NewPagedProvider(n, vecLen, cfg.RAMBytes, cfg.Device, &clock, cfg.Readahead)
		if err != nil {
			return row, err
		}
		e, err := plf.New(d.Tree.Clone(), d.Patterns, d.Model, prov)
		if err != nil {
			return row, err
		}
		lnl, compute, err := fullTraversalWorkload(e, e.T, cfg.Traversals)
		if err != nil {
			return row, err
		}
		row.LnLStandard = lnl
		row.StandardIO = clock.Elapsed()
		row.StandardCompute = compute
		row.MajorFaults = prov.Memory().Stats().MajorFaults
	}

	// Out-of-core runs (the paper plots LRU and Random), confined to the
	// smaller OOC budget like the paper's -L flag.
	slots := int(cfg.OOCBytes / (int64(vecLen) * 8))
	if slots < ooc.MinSlots {
		slots = ooc.MinSlots
	}
	runOOC := func(strat ooc.Strategy) (time.Duration, time.Duration, int64, float64, error) {
		var clock iosim.Clock
		store := ooc.NewSimStore(ooc.NewMemStore(n, vecLen), cfg.Device, &clock)
		mgr, err := ooc.NewManager(ooc.Config{
			NumVectors: n, VectorLen: vecLen, Slots: slots,
			Strategy: strat, ReadSkipping: true, Store: store,
		})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		e, err := plf.New(d.Tree.Clone(), d.Patterns, d.Model, mgr)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		lnl, compute, err := fullTraversalWorkload(e, e.T, cfg.Traversals)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		return clock.Elapsed(), compute, mgr.Stats().Misses, lnl, nil
	}
	io1, c1, m1, l1, err := runOOC(ooc.NewLRU(n))
	if err != nil {
		return row, err
	}
	row.OOCLRUIO, row.OOCLRUCompute, row.OOCLRUMisses = io1, c1, m1
	io2, c2, m2, l2, err := runOOC(ooc.NewRandom(rand.New(rand.NewSource(cfg.Seed + 9))))
	if err != nil {
		return row, err
	}
	row.OOCRandIO, row.OOCRandCompute, row.OOCRandMisses = io2, c2, m2
	row.LnLOOC = l1
	if l1 != row.LnLStandard || l2 != row.LnLStandard {
		return row, fmt.Errorf("correctness violation: standard %v, ooc lru %v, ooc rand %v",
			row.LnLStandard, l1, l2)
	}
	return row, nil
}

// WriteFigure5Table renders the Figure 5 series as text.
func WriteFigure5Table(w io.Writer, rows []Figure5Row, cfg Figure5Config) {
	cfg.fill()
	fmt.Fprintf(w, "Figure 5: %d full traversals, %d taxa, machine RAM %d MiB, OOC limit %d MiB, device %s\n",
		cfg.Traversals, cfg.Taxa, cfg.RAMBytes>>20, cfg.OOCBytes>>20, cfg.Device.Name)
	fmt.Fprintf(w, "%8s %12s %8s %14s %14s %14s %12s %10s\n",
		"sites", "footprint", "over", "standard", "ooc-lru", "ooc-rand", "pagefaults", "speedup")
	for _, r := range rows {
		speedup := float64(r.StandardTotal()) / float64(r.OOCLRUTotal())
		fmt.Fprintf(w, "%8d %11.1fM %7.2fx %14v %14v %14v %12d %9.2fx\n",
			r.Sites, float64(r.FootprintBytes)/(1<<20), r.OverSubscription,
			r.StandardTotal().Round(time.Millisecond),
			r.OOCLRUTotal().Round(time.Millisecond),
			r.OOCRandTotal().Round(time.Millisecond),
			r.MajorFaults, speedup)
	}
}
