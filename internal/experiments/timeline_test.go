package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunTimelineEmitsValidChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunTimeline(TimelineConfig{Taxa: 24, Sites: 96, Rounds: 1, WithFaults: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Fatal("timeline run recorded no trace events")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace JSON holds no events")
	}
	// The run must show both compute-lane and worker-lane activity.
	lanes := map[float64]bool{}
	for _, e := range doc.TraceEvents {
		if tid, ok := e["tid"].(float64); ok {
			lanes[tid] = true
		}
	}
	if !lanes[0] || len(lanes) < 2 {
		t.Errorf("expected compute + worker lanes, got %v", lanes)
	}
	if res.Snapshot == nil || res.Snapshot.Counters["plf.newviews"] == 0 {
		t.Error("registry snapshot missing plf.newviews")
	}
}

func TestRunObsOverheadBitIdentical(t *testing.T) {
	res, err := RunObsOverhead(16, 64, 1, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.LnLOff != res.LnLOn {
		t.Fatalf("lnL differs: off %v on %v", res.LnLOff, res.LnLOn)
	}
	if res.LnLOff != res.LnLSpans {
		t.Fatalf("lnL differs: off %v spans %v", res.LnLOff, res.LnLSpans)
	}
	if res.OffSeconds <= 0 || res.OnSeconds <= 0 || res.SpansSeconds <= 0 {
		t.Fatalf("non-positive wall times: %+v", res)
	}
	if res.SpanCount == 0 {
		t.Fatal("span-traced arm recorded no spans")
	}
}
