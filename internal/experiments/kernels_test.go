package experiments

import (
	"math"
	"strings"
	"testing"
)

// TestKernelAblationSmall runs the ablation at toy scale: the run itself
// enforces bit-identical likelihoods between kernel modes, so a non-nil
// result already certifies exactness; the test checks the bookkeeping.
func TestKernelAblationSmall(t *testing.T) {
	cfg := KernelAblationConfig{Taxa: 12, Sites: 300, Seed: 5, Traversals: 2}
	res, err := RunKernelAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 phases, got %d", len(res.Rows))
	}
	if res.Kernel != "dna4" {
		t.Fatalf("DNA dataset must select the dna4 kernels, got %q", res.Kernel)
	}
	if res.PCacheHits == 0 {
		t.Error("repeated traversals must produce P-cache hits")
	}
	for _, r := range res.Rows {
		if math.IsNaN(r.LnL) || math.IsInf(r.LnL, 0) || r.LnL >= 0 {
			t.Errorf("phase %s: implausible lnL %v", r.Phase, r.LnL)
		}
		if r.GenericWall <= 0 || r.AutoWall <= 0 {
			t.Errorf("phase %s: missing timings %v / %v", r.Phase, r.GenericWall, r.AutoWall)
		}
	}
	var sb strings.Builder
	WriteKernelAblationTable(&sb, res, cfg)
	for _, want := range []string{"newview", "evaluate", "deriv", "P cache", "dna4"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table missing %q:\n%s", want, sb.String())
		}
	}
}
