package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/sim"
)

// Precision ablation — the f32-versus-f64 trade study. One simulated
// dataset runs three ways:
//
//  1. f64 in-memory (the reference likelihood),
//  2. f32 in-memory synchronous,
//  3. f32 out-of-core asynchronous (checksummed store, multiple
//     workers).
//
// The harness enforces the two contracts -precision f32 advertises:
// runs 2 and 3 must agree bit-for-bit (within-precision determinism is
// independent of the I/O and threading regime), and run 2 must agree
// with run 1 to the documented accuracy budget. It also records the
// manifest-verified store geometry, which is where the bandwidth win
// shows up: the f32 store holds half the bytes per vector.

// PrecisionAccuracyBudget is the documented |Δ lnL|/|lnL| ceiling for
// f32 mode. Measured errors sit near 1e-9 (the scaling tail and all
// log-space arithmetic stay in float64); the budget leaves four orders
// of magnitude of slack for unlucky datasets.
const PrecisionAccuracyBudget = 1e-4

// PrecisionAblationConfig describes the f32-versus-f64 run.
type PrecisionAblationConfig struct {
	// Taxa and Sites set the dataset (default 128 taxa — the acceptance
	// criterion's experiment size).
	Taxa, Sites int
	// Seed fixes the dataset.
	Seed int64
	// GammaAlpha sets rate heterogeneity.
	GammaAlpha float64
	// AA switches to protein data.
	AA bool
	// Fraction is the out-of-core RAM fraction for the async f32 run.
	Fraction float64
	// Workers is the PLF worker count for the async run.
	Workers int
}

func (c *PrecisionAblationConfig) fill() {
	if c.Taxa == 0 {
		c.Taxa = 128
	}
	if c.Sites == 0 {
		if c.AA {
			c.Sites = 400
		} else {
			c.Sites = 1500
		}
	}
	if c.GammaAlpha == 0 {
		c.GammaAlpha = 0.8
	}
	if c.Fraction == 0 {
		c.Fraction = 0.4
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
}

// PrecisionAblationResult is the measured trade.
type PrecisionAblationResult struct {
	// LnL64 and LnL32 are the in-memory log-likelihoods per precision.
	LnL64, LnL32 float64
	// LnL32Async is the out-of-core asynchronous f32 log-likelihood; the
	// harness has already verified it equals LnL32 bit-for-bit.
	LnL32Async float64
	// RelErr is |LnL64-LnL32| / |LnL64|.
	RelErr float64
	// Opt64 and Opt32 are the optimised log-likelihoods of one Newton
	// branch pass per precision (the derivative-path accuracy probe).
	Opt64, Opt32 float64
	// VecBytes64 and VecBytes32 are the manifest-verified per-vector
	// store payloads in bytes.
	VecBytes64, VecBytes32 int
	// Kernel is the specialised kernel the f32 runs used.
	Kernel string
}

// runPrecision runs one in-memory engine at the given precision:
// full-traversal likelihood plus a Newton pass over every edge.
func runPrecision(cfg PrecisionAblationConfig, d *sim.Dataset, prec string) (lnl, opt float64, kernel string, err error) {
	t := d.Tree.Clone()
	cl, err := plf.CarrierLength(d.Model, d.Patterns.NumPatterns(), prec)
	if err != nil {
		return 0, 0, "", err
	}
	prov := plf.NewInMemoryProvider(t.NumInner(), cl)
	e, err := plf.NewWithPrecision(t, d.Patterns, d.Model, prov, prec)
	if err != nil {
		return 0, 0, "", err
	}
	defer e.Close()
	lnl, err = e.LogLikelihood()
	if err != nil {
		return 0, 0, "", err
	}
	for _, edge := range t.Edges {
		opt, err = e.OptimizeBranch(edge)
		if err != nil {
			return 0, 0, "", err
		}
	}
	return lnl, opt, e.KernelName(), nil
}

// manifestVecBytes reports the per-vector payload a checksummed store
// at the given precision writes, straight from its manifest.
func manifestVecBytes(d *sim.Dataset, n int, prec string) (int, error) {
	cl, err := plf.CarrierLength(d.Model, d.Patterns.NumPatterns(), prec)
	if err != nil {
		return 0, err
	}
	dir, err := os.MkdirTemp("", "oocphylo-precision-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	cs, err := ooc.NewChecksumStore(ooc.NewMemStore(n, cl), filepath.Join(dir, "v.sum"), n, cl)
	if err != nil {
		return 0, err
	}
	defer cs.Close()
	cs.SetPrecision(prec)
	man := cs.Manifest()
	if got := normManifestPrecision(man.Precision); got != prec {
		return 0, fmt.Errorf("manifest precision %q, want %q", man.Precision, prec)
	}
	return man.VectorLen * 8, nil
}

func normManifestPrecision(p string) string {
	if p == "" {
		return plf.PrecisionF64
	}
	return p
}

// RunPrecisionAblation measures the f32 trade and enforces its
// contracts: sync/async f32 bit-identity and the accuracy budget.
func RunPrecisionAblation(cfg PrecisionAblationConfig) (*PrecisionAblationResult, error) {
	cfg.fill()
	d, err := sim.NewDataset(sim.Config{
		Taxa: cfg.Taxa, Sites: cfg.Sites, GammaAlpha: cfg.GammaAlpha, Seed: cfg.Seed,
		AA: cfg.AA,
	})
	if err != nil {
		return nil, err
	}
	res := &PrecisionAblationResult{}
	res.LnL64, res.Opt64, _, err = runPrecision(cfg, d, plf.PrecisionF64)
	if err != nil {
		return nil, fmt.Errorf("f64 run: %w", err)
	}
	res.LnL32, res.Opt32, res.Kernel, err = runPrecision(cfg, d, plf.PrecisionF32)
	if err != nil {
		return nil, fmt.Errorf("f32 run: %w", err)
	}
	res.RelErr = math.Abs(res.LnL64-res.LnL32) / math.Abs(res.LnL64)
	if res.RelErr > PrecisionAccuracyBudget {
		return nil, fmt.Errorf("f32 accuracy budget blown: lnL %.6f vs %.6f (rel %.2e > %g)",
			res.LnL32, res.LnL64, res.RelErr, PrecisionAccuracyBudget)
	}

	// Async out-of-core f32: same dataset through a checksummed store
	// with prefetching workers. Must reproduce the sync bits exactly.
	t := d.Tree.Clone()
	n := t.NumInner()
	cl, err := plf.CarrierLength(d.Model, d.Patterns.NumPatterns(), plf.PrecisionF32)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "oocphylo-precision-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := ooc.NewChecksumStore(ooc.NewMemStore(n, cl), filepath.Join(dir, "async.sum"), n, cl)
	if err != nil {
		return nil, err
	}
	store.SetPrecision(plf.PrecisionF32)
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors: n, VectorLen: cl,
		Slots:        ooc.SlotsForFraction(cfg.Fraction, n),
		Strategy:     ooc.NewLRU(n),
		ReadSkipping: true,
		Store:        store,
		Async:        true,
	})
	if err != nil {
		return nil, err
	}
	e, err := plf.NewWithPrecision(t, d.Patterns, d.Model, mgr, plf.PrecisionF32)
	if err != nil {
		mgr.Close()
		return nil, err
	}
	e.EnablePrefetch(true)
	e.SetWorkers(cfg.Workers)
	res.LnL32Async, err = e.LogLikelihood()
	e.Close()
	if cerr := mgr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("f32 async run: %w", err)
	}
	if math.Float64bits(res.LnL32Async) != math.Float64bits(res.LnL32) {
		return nil, fmt.Errorf("f32 sync/async divergence: %.17g vs %.17g",
			res.LnL32, res.LnL32Async)
	}

	res.VecBytes64, err = manifestVecBytes(d, n, plf.PrecisionF64)
	if err != nil {
		return nil, err
	}
	res.VecBytes32, err = manifestVecBytes(d, n, plf.PrecisionF32)
	if err != nil {
		return nil, err
	}
	if res.VecBytes32*2 != res.VecBytes64 && res.VecBytes32*2 != res.VecBytes64+8 {
		return nil, fmt.Errorf("f32 store not halved: %d B vs %d B per vector",
			res.VecBytes32, res.VecBytes64)
	}
	return res, nil
}

// WritePrecisionAblationTable renders the trade as text.
func WritePrecisionAblationTable(w io.Writer, res *PrecisionAblationResult, cfg PrecisionAblationConfig) {
	cfg.fill()
	data := "DNA"
	if cfg.AA {
		data = "protein"
	}
	fmt.Fprintf(w, "Precision ablation: %d taxa × %d sites %s +Γ4, kernel %s\n",
		cfg.Taxa, cfg.Sites, data, res.Kernel)
	fmt.Fprintf(w, "%22s %18s %18s\n", "", "f64", "f32")
	fmt.Fprintf(w, "%22s %18.6f %18.6f\n", "lnL", res.LnL64, res.LnL32)
	fmt.Fprintf(w, "%22s %18.6f %18.6f\n", "optimised lnL", res.Opt64, res.Opt32)
	fmt.Fprintf(w, "%22s %18d %18d\n", "store bytes/vector", res.VecBytes64, res.VecBytes32)
	fmt.Fprintf(w, "relative lnL error %.3e (budget %g); f32 sync == f32 async: bit-identical\n",
		res.RelErr, PrecisionAccuracyBudget)
}
