package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"oocphylo/internal/plf"
	"oocphylo/internal/sim"
)

// Kernel ablation — the compute-side counterpart of the I/O ablations.
// The same three workloads that dominate a likelihood search (newview
// full traversals, evaluate edge walks, Newton branch optimisation) run
// once under the generic k-state kernels with the transition-matrix
// cache disabled (the legacy compute path) and once under auto dispatch
// (DNA-unrolled kernels plus the P cache). The harness enforces the
// repo-wide exactness bar — bit-identical log-likelihoods per phase —
// so the table can only ever show speed differences, never result
// differences.

// KernelAblationConfig describes the generic-versus-specialised sweep.
type KernelAblationConfig struct {
	// Taxa and Sites set the simulated dataset dimensions.
	Taxa, Sites int
	// Seed fixes the dataset.
	Seed int64
	// GammaAlpha sets rate heterogeneity (Γ4, the c=4 fast-path shape).
	GammaAlpha float64
	// Traversals is the number of full traversals in the newview phase.
	Traversals int
	// Workers is the PLF worker count (default 1, the acceptance
	// criterion's configuration).
	Workers int
	// AA switches the dataset to protein (k=20), ablating the aa20
	// kernel set instead of dna4. Sites defaults lower (500) since each
	// protein pattern carries 25x the arithmetic of a DNA pattern.
	AA bool
}

func (c *KernelAblationConfig) fill() {
	if c.Taxa == 0 {
		c.Taxa = 64
	}
	if c.Sites == 0 {
		if c.AA {
			c.Sites = 500
		} else {
			c.Sites = 2000
		}
	}
	if c.GammaAlpha == 0 {
		c.GammaAlpha = 0.8
	}
	if c.Traversals == 0 {
		c.Traversals = 5
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
}

// KernelAblationRow is one workload phase, generic versus specialised.
type KernelAblationRow struct {
	// Phase names the workload: "newview", "evaluate" or "deriv".
	Phase string
	// GenericWall and AutoWall are the measured wall-clock times.
	GenericWall, AutoWall time.Duration
	// LnL is the (bit-identical) phase checksum: the final or summed
	// log-likelihood the phase produced.
	LnL float64
}

// Speedup returns generic/auto wall time.
func (r KernelAblationRow) Speedup() float64 {
	if r.AutoWall <= 0 {
		return 0
	}
	return float64(r.GenericWall) / float64(r.AutoWall)
}

// kernelPhaseResult is one mode's execution of all three phases.
type kernelPhaseResult struct {
	wall   [3]time.Duration
	lnl    [3]float64
	stats  plf.Stats
	kernel string
}

// runKernelPhases executes the three workloads on a fresh engine in the
// given kernel mode. Both modes run the identical operation sequence on
// identical inputs (tree clones share branch lengths; OptimizeBranch
// mutates only the clone), so per-phase results must agree to the bit.
func runKernelPhases(cfg KernelAblationConfig, d *sim.Dataset, mode string) (kernelPhaseResult, error) {
	var r kernelPhaseResult
	t := d.Tree.Clone()
	prov := plf.NewInMemoryProvider(t.NumInner(), plf.VectorLength(d.Model, d.Patterns.NumPatterns()))
	e, err := plf.New(t, d.Patterns, d.Model, prov)
	if err != nil {
		return r, err
	}
	if err := e.SetKernel(mode); err != nil {
		return r, err
	}
	e.SetWorkers(cfg.Workers)
	defer e.Close()

	// Phase 1 — newview: k full traversals (the Figure-5 workload).
	start := time.Now()
	lnl, _, err := fullTraversalWorkload(e, t, cfg.Traversals)
	if err != nil {
		return r, err
	}
	r.wall[0] = time.Since(start)
	r.lnl[0] = lnl

	// Phase 2 — evaluate: walk every edge, evaluating at each (partial
	// traversals keep newview work minimal, so evaluate dominates).
	start = time.Now()
	sum := 0.0
	for _, edge := range t.Edges {
		l, err := e.LogLikelihoodAt(edge)
		if err != nil {
			return r, err
		}
		sum += l
	}
	r.wall[1] = time.Since(start)
	r.lnl[1] = sum

	// Phase 3 — deriv: Newton-optimise every edge once (sum table
	// construction plus iteration).
	start = time.Now()
	sum = 0.0
	for _, edge := range t.Edges {
		l, err := e.OptimizeBranch(edge)
		if err != nil {
			return r, err
		}
		sum += l
	}
	r.wall[2] = time.Since(start)
	r.lnl[2] = sum

	r.stats = e.Stats
	r.kernel = e.KernelName()
	return r, nil
}

// KernelAblationResult bundles the phase rows with the cache counters of
// the specialised run.
type KernelAblationResult struct {
	Rows []KernelAblationRow
	// Kernel is the specialised run's active kernel name ("dna4").
	Kernel string
	// PCacheHits / PCacheMisses are the specialised run's cache ledger
	// over all three phases (the generic run's is zero by construction).
	PCacheHits, PCacheMisses int64
}

// HitRate returns hits/(hits+misses) of the P cache.
func (res KernelAblationResult) HitRate() float64 {
	tot := res.PCacheHits + res.PCacheMisses
	if tot == 0 {
		return 0
	}
	return float64(res.PCacheHits) / float64(tot)
}

// RunKernelAblation runs the three phases under both kernel modes and
// fails if any phase's likelihood checksum differs by a single bit.
func RunKernelAblation(cfg KernelAblationConfig) (*KernelAblationResult, error) {
	cfg.fill()
	d, err := sim.NewDataset(sim.Config{
		Taxa: cfg.Taxa, Sites: cfg.Sites, GammaAlpha: cfg.GammaAlpha, Seed: cfg.Seed,
		AA: cfg.AA,
	})
	if err != nil {
		return nil, err
	}
	gen, err := runKernelPhases(cfg, d, plf.KernelGeneric)
	if err != nil {
		return nil, fmt.Errorf("generic kernels: %w", err)
	}
	auto, err := runKernelPhases(cfg, d, plf.KernelAuto)
	if err != nil {
		return nil, fmt.Errorf("auto kernels: %w", err)
	}
	if gen.stats.PCacheHits != 0 || gen.stats.PCacheMisses != 0 {
		return nil, fmt.Errorf("generic run touched the P cache: %+v", gen.stats)
	}
	phases := []string{"newview", "evaluate", "deriv"}
	res := &KernelAblationResult{
		Kernel:       auto.kernel,
		PCacheHits:   auto.stats.PCacheHits,
		PCacheMisses: auto.stats.PCacheMisses,
	}
	for i, phase := range phases {
		if math.Float64bits(gen.lnl[i]) != math.Float64bits(auto.lnl[i]) {
			return nil, fmt.Errorf("phase %s: likelihood diverged: generic %.17g, %s %.17g",
				phase, gen.lnl[i], auto.kernel, auto.lnl[i])
		}
		res.Rows = append(res.Rows, KernelAblationRow{
			Phase:       phase,
			GenericWall: gen.wall[i],
			AutoWall:    auto.wall[i],
			LnL:         auto.lnl[i],
		})
	}
	return res, nil
}

// WriteKernelAblationTable renders the ablation as text.
func WriteKernelAblationTable(w io.Writer, res *KernelAblationResult, cfg KernelAblationConfig) {
	cfg.fill()
	data := "DNA GTR+Γ4"
	if cfg.AA {
		data = "protein Poisson+Γ4"
	}
	fmt.Fprintf(w, "Kernel ablation: %d taxa × %d sites %s, %d traversals, %d worker(s), kernel %s\n",
		cfg.Taxa, cfg.Sites, data, cfg.Traversals, cfg.Workers, res.Kernel)
	fmt.Fprintf(w, "%10s %12s %12s %8s %16s\n", "phase", "generic", res.Kernel, "speedup", "lnL (identical)")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%10s %12v %12v %7.2fx %16.2f\n",
			r.Phase, r.GenericWall.Round(10*time.Microsecond), r.AutoWall.Round(10*time.Microsecond),
			r.Speedup(), r.LnL)
	}
	fmt.Fprintf(w, "P cache: %d hits / %d misses (%.1f%% hit rate)\n",
		res.PCacheHits, res.PCacheMisses, 100*res.HitRate())
}
