package experiments

// Batching ablation — the service daemon's throughput claim, measured.
// N concurrent evaluate requests against one session can be answered
// two ways: as N independent engine passes (what N separate one-shot
// CLI runs pay — each rebuilds every ancestral vector on its path), or
// coalesced by the daemon's batcher into a single pass whose first
// request pays the traversal and whose remaining N-1 requests ride on
// the now-valid vectors. The PLF is deterministic per (tree, model,
// pattern) triple, so both arms return bit-identical likelihoods; the
// ablation quantifies the wall-clock side of that equivalence, the
// same way the resize and async ablations bound THEIR "free in exact
// arithmetic" claims.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"oocphylo/internal/bio"
	"oocphylo/internal/service"
	"oocphylo/internal/sim"
)

// BatchingAblationConfig describes the coalescing experiment.
type BatchingAblationConfig struct {
	// Taxa and Sites set the dataset dimensions (defaults 64 × 400 —
	// big enough that a full traversal dominates a single evaluate).
	Taxa, Sites int
	// GammaAlpha sets the simulated rate heterogeneity (default 0.8).
	GammaAlpha float64
	// Seed fixes the dataset and starting tree.
	Seed int64
	// Requests is the concurrent client count N (default 8).
	Requests int
	// Edge is the evaluation edge index (default 0).
	Edge int
	// DataDir is the service data directory (required; the daemon
	// persists session files there).
	DataDir string
}

func (c *BatchingAblationConfig) fill() {
	if c.Taxa == 0 {
		c.Taxa = 64
	}
	if c.Sites == 0 {
		c.Sites = 400
	}
	if c.GammaAlpha == 0 {
		c.GammaAlpha = 0.8
	}
	if c.Requests == 0 {
		c.Requests = 8
	}
}

// BatchingAblationResult compares the two service arms.
type BatchingAblationResult struct {
	// Requests is the concurrent client count N.
	Requests int
	// IndependentExec is the summed engine-execution time of N
	// sequential fresh passes (each request a batch of one, vectors
	// invalidated first — the N-independent-one-shots arm).
	IndependentExec time.Duration
	// CoalescedExec is the summed engine-execution time of the batches
	// the N concurrent requests coalesced into.
	CoalescedExec time.Duration
	// CoalescedBatches counts those batches (1 when every request rode
	// one pass).
	CoalescedBatches int
	// Speedup is IndependentExec / CoalescedExec.
	Speedup float64
	// LnLBits is the shared bit pattern of every reply in BOTH arms —
	// the equivalence the speedup is not allowed to buy back.
	LnLBits string
}

// RunBatchingAblation measures coalesced vs independent evaluates
// against a live service session. Any reply differing by a single bit
// from the others — across arms — is an error, not a data point.
func RunBatchingAblation(cfg BatchingAblationConfig) (*BatchingAblationResult, error) {
	cfg.fill()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("experiments: batching ablation needs a DataDir")
	}
	d, err := sim.NewDataset(sim.Config{
		Taxa: cfg.Taxa, Sites: cfg.Sites, GammaAlpha: cfg.GammaAlpha, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	alnPath := filepath.Join(cfg.DataDir, "batching.phy")
	f, err := os.Create(alnPath)
	if err != nil {
		return nil, err
	}
	if err := bio.WritePhylip(f, d.Alignment); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	srv, err := service.NewServer(service.ServerConfig{
		DataDir: cfg.DataDir,
		// MaxBatch = N and a generous window: the concurrent arm's
		// requests are all in flight together, so they coalesce fully.
		Batch: service.BatcherConfig{MaxBatch: cfg.Requests, MaxWait: 100 * time.Millisecond},
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	newSession := func(name string) (*service.Session, error) {
		return srv.CreateSession(service.SessionConfig{
			Name: name, Path: alnPath, Model: "GTR", Alpha: cfg.GammaAlpha, Cats: 4, Seed: cfg.Seed,
		})
	}

	// Arm 1 — independent: sequential requests, each forcing the fresh
	// full pass a standalone one-shot run would compute.
	indep, err := newSession("independent")
	if err != nil {
		return nil, err
	}
	res := &BatchingAblationResult{Requests: cfg.Requests}
	var bits string
	for i := 0; i < cfg.Requests; i++ {
		rep, err := indep.Evaluate(service.EvalSpec{Edge: cfg.Edge, Full: true})
		if err != nil {
			return nil, fmt.Errorf("experiments: independent request %d: %w", i, err)
		}
		if bits == "" {
			bits = rep.LnLBits
		} else if rep.LnLBits != bits {
			return nil, fmt.Errorf("experiments: independent request %d: bits %s != %s", i, rep.LnLBits, bits)
		}
		res.IndependentExec += time.Duration(rep.ExecMicros) * time.Microsecond
	}

	// Arm 2 — coalesced: the same N requests, concurrent, against a
	// fresh identically-configured session (so its vectors start cold,
	// exactly like the independent arm's first pass).
	coal, err := newSession("coalesced")
	if err != nil {
		return nil, err
	}
	replies := make([]service.EvalReply, cfg.Requests)
	errs := make([]error, cfg.Requests)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i], errs[i] = coal.Evaluate(service.EvalSpec{Edge: cfg.Edge})
		}(i)
	}
	wg.Wait()
	batchExec := make(map[int64]time.Duration)
	for i, rep := range replies {
		if errs[i] != nil {
			return nil, fmt.Errorf("experiments: coalesced request %d: %w", i, errs[i])
		}
		if rep.LnLBits != bits {
			return nil, fmt.Errorf("experiments: coalesced request %d: bits %s != independent %s", i, rep.LnLBits, bits)
		}
		batchExec[rep.Batch] = time.Duration(rep.ExecMicros) * time.Microsecond
	}
	for _, d := range batchExec {
		res.CoalescedExec += d
	}
	res.CoalescedBatches = len(batchExec)
	if res.CoalescedExec > 0 {
		res.Speedup = float64(res.IndependentExec) / float64(res.CoalescedExec)
	}
	res.LnLBits = bits
	return res, nil
}

// WriteBatchingTable renders the result as the EXPERIMENTS.md table.
func WriteBatchingTable(w io.Writer, r *BatchingAblationResult) {
	fmt.Fprintln(w, "| arm | requests | engine passes | exec time | lnL bits |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	fmt.Fprintf(w, "| independent | %d | %d | %v | %s |\n",
		r.Requests, r.Requests, r.IndependentExec.Round(time.Microsecond), r.LnLBits)
	fmt.Fprintf(w, "| coalesced | %d | %d | %v | %s |\n",
		r.Requests, r.CoalescedBatches, r.CoalescedExec.Round(time.Microsecond), r.LnLBits)
	fmt.Fprintf(w, "\nSpeedup: %.2fx\n", r.Speedup)
}
