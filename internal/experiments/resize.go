package experiments

// Resize ablation — what the paper's fixed-f experiments cannot show.
// Figures 2-4 rebuild the manager for every memory fraction; the
// runtime governor instead shrinks a LIVE pool mid-run, so the
// interesting questions become (a) how each replacement strategy's
// miss rate degrades along a shrink trajectory it did not start with,
// and (b) what the resize machinery itself costs when the pool
// oscillates. Both experiments enforce the invariant the whole
// subsystem is built on: slot-count changes move I/O around but never
// change a computed likelihood bit.

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

// ResizeAblationConfig describes the mid-run shrink experiment.
type ResizeAblationConfig struct {
	// Taxa and Sites set the dataset dimensions.
	Taxa, Sites int
	// Seed fixes dataset and starting tree.
	Seed int64
	// GammaAlpha sets the simulated rate heterogeneity.
	GammaAlpha float64
	// StartF is the memory fraction the run begins with (default 0.75);
	// the pool is halved in place until MinSlots.
	StartF float64
	// TraversalsPerPhase is the number of full tree traversals executed
	// at each slot count (default 2).
	TraversalsPerPhase int
	// MinSlots floors the shrink trajectory (default ooc.MinSlots).
	MinSlots int
}

func (c *ResizeAblationConfig) fill() {
	if c.Taxa == 0 {
		c.Taxa = 128
	}
	if c.Sites == 0 {
		c.Sites = 200
	}
	if c.GammaAlpha == 0 {
		c.GammaAlpha = 0.8
	}
	if c.StartF == 0 {
		c.StartF = 0.75
	}
	if c.TraversalsPerPhase == 0 {
		c.TraversalsPerPhase = 2
	}
	if c.MinSlots < ooc.MinSlots {
		c.MinSlots = ooc.MinSlots
	}
}

// ResizePhaseRow is one (strategy, slot count) segment of the shrink
// trajectory: the miss rate over exactly the accesses made while the
// live pool held Slots slots.
type ResizePhaseRow struct {
	// Strategy is the replacement policy name.
	Strategy string
	// Phase numbers the shrink steps from 0 (the starting pool).
	Phase int
	// Slots is the live pool size during this segment.
	Slots int
	// Requests and Misses are this segment's access counters (deltas,
	// not cumulative totals).
	Requests, Misses int64
	// MissRate is Misses/Requests for the segment.
	MissRate float64
	// LnL is the likelihood computed at the end of the segment — equal,
	// bit for bit, across every strategy, phase and slot count.
	LnL float64
}

// shrinkSchedule halves start until the floor, always ending exactly
// at the floor.
func shrinkSchedule(start, floor int) []int {
	var sched []int
	for s := start; s > floor; s /= 2 {
		sched = append(sched, s)
	}
	return append(sched, floor)
}

// RunResizeAblation shrinks a live manager along a halving schedule
// mid-run, for each replacement strategy, and reports the per-segment
// miss rates. Every computed likelihood is checked against an
// all-in-RAM reference; a single differing bit is an error.
func RunResizeAblation(cfg ResizeAblationConfig) ([]ResizePhaseRow, error) {
	cfg.fill()
	d, err := sim.NewDataset(sim.Config{
		Taxa: cfg.Taxa, Sites: cfg.Sites, GammaAlpha: cfg.GammaAlpha, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, d.Tree.NumTips)
	for i := range names {
		names[i] = d.Tree.Nodes[i].Name
	}
	start, err := tree.RandomTopology(names, rand.New(rand.NewSource(cfg.Seed+1)), 0.05, 0.15)
	if err != nil {
		return nil, err
	}
	vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
	n := start.NumInner()

	// All-in-RAM reference likelihood.
	ref, err := plf.New(start.Clone(), d.Patterns, d.Model, plf.NewInMemoryProvider(n, vecLen))
	if err != nil {
		return nil, err
	}
	refLnL, err := ref.LogLikelihoodAt(ref.T.Edges[0])
	if err != nil {
		return nil, err
	}

	startSlots := ooc.SlotsForFraction(cfg.StartF, n)
	sched := shrinkSchedule(startSlots, cfg.MinSlots)
	var out []ResizePhaseRow
	for _, name := range StrategyNames {
		strat, err := NewStrategy(name, n, start, cfg.Seed+2)
		if err != nil {
			return nil, err
		}
		mgr, err := ooc.NewManager(ooc.Config{
			NumVectors: n, VectorLen: vecLen, Slots: startSlots,
			Strategy: strat, ReadSkipping: true,
			Store: ooc.NewMemStore(n, vecLen),
		})
		if err != nil {
			return nil, err
		}
		e, err := plf.New(start.Clone(), d.Patterns, d.Model, mgr)
		if err != nil {
			return nil, err
		}
		var prev ooc.Stats
		for phase, slots := range sched {
			if phase > 0 {
				if err := mgr.Resize(slots); err != nil {
					return nil, fmt.Errorf("%s phase %d: %w", name, phase, err)
				}
			}
			var lnl float64
			for k := 0; k < cfg.TraversalsPerPhase; k++ {
				if err := e.FullTraversal(e.T.Edges[0]); err != nil {
					return nil, err
				}
				if lnl, err = e.LogLikelihoodAt(e.T.Edges[0]); err != nil {
					return nil, err
				}
			}
			if math.Float64bits(lnl) != math.Float64bits(refLnL) {
				return nil, fmt.Errorf("%s at %d slots: lnL %.17g != reference %.17g",
					name, slots, lnl, refLnL)
			}
			cur := mgr.Stats()
			row := ResizePhaseRow{
				Strategy: name, Phase: phase, Slots: slots,
				Requests: cur.Requests - prev.Requests,
				Misses:   cur.Misses - prev.Misses,
				LnL:      lnl,
			}
			if row.Requests > 0 {
				row.MissRate = float64(row.Misses) / float64(row.Requests)
			}
			prev = cur
			out = append(out, row)
		}
		mgr.Close()
	}
	return out, nil
}

// ResizeOverheadResult quantifies what pool oscillation itself costs:
// the same traversal workload with a fixed pool versus one that is
// shrunk to Low and regrown to Slots between traversals.
type ResizeOverheadResult struct {
	// Slots and Low are the pool bounds of the oscillating run.
	Slots, Low int
	// Resizes counts the Resize calls the oscillating run issued.
	Resizes int
	// FixedTime and ResizeTime are the two runs' wall times.
	FixedTime, ResizeTime time.Duration
	// FixedLnL and ResizeLnL are the final likelihoods — bit-identical
	// by construction, re-checked at run time.
	FixedLnL, ResizeLnL float64
	// FixedStats and ResizeStats are the managers' counters: the
	// oscillating run pays for re-faulting what each shrink evicted.
	FixedStats, ResizeStats ooc.Stats
}

// Overhead returns the relative wall-time cost of oscillating,
// (ResizeTime-FixedTime)/FixedTime.
func (r ResizeOverheadResult) Overhead() float64 {
	if r.FixedTime <= 0 {
		return 0
	}
	return float64(r.ResizeTime-r.FixedTime) / float64(r.FixedTime)
}

// RunResizeOverhead measures the oscillation cost on the standard
// traversal workload with the LRU strategy. traversals bounds the
// workload length (default 6 when <= 0).
func RunResizeOverhead(cfg ResizeAblationConfig, traversals int) (*ResizeOverheadResult, error) {
	cfg.fill()
	if traversals <= 0 {
		traversals = 6
	}
	d, err := sim.NewDataset(sim.Config{
		Taxa: cfg.Taxa, Sites: cfg.Sites, GammaAlpha: cfg.GammaAlpha, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, d.Tree.NumTips)
	for i := range names {
		names[i] = d.Tree.Nodes[i].Name
	}
	start, err := tree.RandomTopology(names, rand.New(rand.NewSource(cfg.Seed+1)), 0.05, 0.15)
	if err != nil {
		return nil, err
	}
	vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
	n := start.NumInner()
	slots := ooc.SlotsForFraction(cfg.StartF, n)
	low := slots / 2
	if low < cfg.MinSlots {
		low = cfg.MinSlots
	}

	run := func(oscillate bool) (float64, time.Duration, int, ooc.Stats, error) {
		mgr, err := ooc.NewManager(ooc.Config{
			NumVectors: n, VectorLen: vecLen, Slots: slots,
			Strategy: ooc.NewLRU(n), ReadSkipping: true,
			Store: ooc.NewMemStore(n, vecLen),
		})
		if err != nil {
			return 0, 0, 0, ooc.Stats{}, err
		}
		defer mgr.Close()
		e, err := plf.New(start.Clone(), d.Patterns, d.Model, mgr)
		if err != nil {
			return 0, 0, 0, ooc.Stats{}, err
		}
		resizes := 0
		begin := time.Now()
		var lnl float64
		for k := 0; k < traversals; k++ {
			if oscillate && k > 0 {
				// Shrink-and-regrow between traversals: the traversal
				// itself always runs at full width, so any extra time is
				// the resize machinery plus the re-faults it caused.
				if err := mgr.Resize(low); err != nil {
					return 0, 0, 0, ooc.Stats{}, err
				}
				if err := mgr.Resize(slots); err != nil {
					return 0, 0, 0, ooc.Stats{}, err
				}
				resizes += 2
			}
			if err := e.FullTraversal(e.T.Edges[0]); err != nil {
				return 0, 0, 0, ooc.Stats{}, err
			}
			if lnl, err = e.LogLikelihoodAt(e.T.Edges[0]); err != nil {
				return 0, 0, 0, ooc.Stats{}, err
			}
		}
		return lnl, time.Since(begin), resizes, mgr.Stats(), nil
	}

	res := &ResizeOverheadResult{Slots: slots, Low: low}
	if res.FixedLnL, res.FixedTime, _, res.FixedStats, err = run(false); err != nil {
		return nil, err
	}
	if res.ResizeLnL, res.ResizeTime, res.Resizes, res.ResizeStats, err = run(true); err != nil {
		return nil, err
	}
	if math.Float64bits(res.ResizeLnL) != math.Float64bits(res.FixedLnL) {
		return nil, fmt.Errorf("oscillating lnL %.17g != fixed %.17g", res.ResizeLnL, res.FixedLnL)
	}
	return res, nil
}

// WriteResizeTable renders the shrink-trajectory rows as an aligned
// text table, one row per strategy×phase.
func WriteResizeTable(w io.Writer, rows []ResizePhaseRow, cfg ResizeAblationConfig) {
	cfg.fill()
	fmt.Fprintf(w, "Live pool shrink trajectory (%d taxa, %d sites, start f=%.2f, %d traversals/phase)\n",
		cfg.Taxa, cfg.Sites, cfg.StartF, cfg.TraversalsPerPhase)
	fmt.Fprintf(w, "%-12s %6s %6s %10s %10s %8s %14s\n",
		"strategy", "phase", "slots", "requests", "misses", "miss%", "lnL")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %6d %6d %10d %10d %7.2f%% %14.2f\n",
			r.Strategy, r.Phase, r.Slots, r.Requests, r.Misses, 100*r.MissRate, r.LnL)
	}
}
