package experiments

// Tiered-storage ablation: the same deterministic tree search run over
// (a) a plain local FileStore, (b) a TieredStore with a cold local
// cache in front of a latency-injected loopback remote, (c) the same
// tiered stack reopened warm, and (d) a deliberately small cache with
// the engine's fetch-vs-recompute policy enabled — each at a sweep of
// injected round-trip times. The likelihood is bit-identical across
// every arm (enforced here, not merely reported); what moves is where
// vector reads are served from and what that costs in wall-clock.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"oocphylo/internal/iosim"
	"oocphylo/internal/ooc"
	"oocphylo/internal/ooc/remote"
	"oocphylo/internal/plf"
	"oocphylo/internal/search"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

// TierAblationConfig configures RunTierAblation.
type TierAblationConfig struct {
	// Workload is the shared search workload (defaults as in Figures
	// 2-4: 128 taxa).
	Workload SearchWorkloadConfig
	// RTTs is the injected remote round-trip sweep (default 1, 10,
	// 50 ms).
	RTTs []time.Duration
	// MemFraction sets the manager's RAM-slot fraction f (default
	// 0.25 — small enough that evicted-vector reads actually happen).
	MemFraction float64
	// ColdCacheFraction sizes the cold arm's local cache as a fraction
	// of the vector count (default 0.35: the cache cannot hold the
	// working set, so some reads go remote).
	ColdCacheFraction float64
	// RecomputeCacheFraction sizes the recompute arm's cache (default
	// 0.15) — starved enough that the policy has remote reads to
	// convert.
	RecomputeCacheFraction float64
	// Lanes is the tiered store's remote fan-out (default 2).
	Lanes int
	// Async runs the manager's background I/O pipeline (the results
	// must not change either way).
	Async bool
	// CheckWallClock additionally enforces the warm-arm wall-clock
	// bound (<= 1.25x the local baseline at 10 ms RTT). Off by default:
	// counter assertions are deterministic, wall-clock ones are only
	// meaningful at full workload scale (cmd/figures turns this on).
	CheckWallClock bool
	// Dir is the scratch directory for backing files and caches
	// (default: a fresh temp dir, removed afterwards).
	Dir string
}

func (c *TierAblationConfig) fill() {
	c.Workload.fill()
	if len(c.RTTs) == 0 {
		c.RTTs = []time.Duration{time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond}
	}
	if c.MemFraction == 0 {
		c.MemFraction = 0.25
	}
	if c.ColdCacheFraction == 0 {
		c.ColdCacheFraction = 0.35
	}
	if c.RecomputeCacheFraction == 0 {
		c.RecomputeCacheFraction = 0.15
	}
	if c.Lanes == 0 {
		c.Lanes = 2
	}
}

// TierAblationRow is one (RTT, arm) measurement.
type TierAblationRow struct {
	// RTT is the injected remote round-trip time (0 for the local arm).
	RTT time.Duration
	// Arm is "local", "cold", "warm" or "recompute".
	Arm string
	// Elapsed is the search wall-clock.
	Elapsed time.Duration
	// LnL is the final likelihood (identical across all rows).
	LnL float64
	// Slots is the manager's RAM-slot count.
	Slots int
	// Manager holds the slot-manager counters.
	Manager ooc.Stats
	// Tier holds the tiered store's counters (zero for the local arm).
	Tier ooc.TierStats
	// PolicyRecomputes counts fetches the engine converted into local
	// newviews (recompute arm only).
	PolicyRecomputes int64
	// LocalFraction is the share of vector-read demand served without a
	// remote trip: cache hits, skipped reads and policy recomputes over
	// all demand. 1.0 for the local arm.
	LocalFraction float64
}

// tierWorkload carries the dataset built once and shared by every arm.
type tierWorkload struct {
	cfg    SearchWorkloadConfig
	data   *sim.Dataset
	start  *tree.Tree
	vecLen int
	nVec   int
	slots  int
}

func newTierWorkload(cfg SearchWorkloadConfig, memFraction float64) (*tierWorkload, error) {
	d, err := sim.NewDataset(sim.Config{
		Taxa: cfg.Taxa, Sites: cfg.Sites, GammaAlpha: cfg.GammaAlpha, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, d.Tree.NumTips)
	for i := range names {
		names[i] = d.Tree.Nodes[i].Name
	}
	start, err := tree.RandomTopology(names, rand.New(rand.NewSource(cfg.Seed+1)), 0.05, 0.15)
	if err != nil {
		return nil, err
	}
	return &tierWorkload{
		cfg:    cfg,
		data:   d,
		start:  start,
		vecLen: plf.VectorLength(d.Model, d.Patterns.NumPatterns()),
		nVec:   start.NumInner(),
		slots:  ooc.SlotsForFraction(memFraction, start.NumInner()),
	}, nil
}

// run executes the search over store and returns the measurement. The
// tree is rebuilt per run (the search mutates topology), so every arm
// replays the identical operation sequence.
func (w *tierWorkload) run(store ooc.Store, async bool, policy time.Duration) (TierAblationRow, error) {
	var row TierAblationRow
	names := make([]string, w.data.Tree.NumTips)
	for i := range names {
		names[i] = w.data.Tree.Nodes[i].Name
	}
	start, err := tree.RandomTopology(names, rand.New(rand.NewSource(w.cfg.Seed+1)), 0.05, 0.15)
	if err != nil {
		return row, err
	}
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors: w.nVec, VectorLen: w.vecLen, Slots: w.slots,
		Strategy: ooc.NewLRU(w.nVec), ReadSkipping: true,
		Store: store, Async: async,
	})
	if err != nil {
		return row, err
	}
	e, err := plf.New(start, w.data.Patterns, w.data.Model, mgr)
	if err != nil {
		return row, err
	}
	if policy > 0 {
		e.EnableRecomputePolicy(policy)
	}
	t0 := time.Now()
	sr, err := search.New(e, search.Options{
		SPRRadius: w.cfg.SPRRadius, MaxRounds: w.cfg.Rounds,
	}).Run()
	if err != nil {
		return row, err
	}
	if err := mgr.Flush(); err != nil {
		return row, err
	}
	if err := mgr.Close(); err != nil {
		return row, err
	}
	row.Elapsed = time.Since(t0)
	row.LnL = sr.LnL
	row.Slots = w.slots
	row.Manager = mgr.Stats()
	row.PolicyRecomputes = e.Stats.PolicyRecomputes
	return row, nil
}

// localFraction computes the share of read demand served without a
// remote round trip.
func localFraction(mst ooc.Stats, tst ooc.TierStats, policy int64) float64 {
	demand := mst.Reads + mst.SkippedReads + policy
	if demand == 0 {
		return 1
	}
	return 1 - float64(tst.RemoteVectorsRead)/float64(demand)
}

// RunTierAblation runs the four arms at each configured RTT. It fails —
// rather than returning misleading rows — if any arm's likelihood
// diverges from the local baseline, or if the warm arm's served-locally
// fraction drops below 70%.
func RunTierAblation(cfg TierAblationConfig) ([]TierAblationRow, error) {
	cfg.fill()
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "tiers"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	w, err := newTierWorkload(cfg.Workload, cfg.MemFraction)
	if err != nil {
		return nil, err
	}

	// Local baseline, once (the RTT sweep does not touch it).
	fs, err := ooc.NewFileStore(filepath.Join(dir, "local.vec"), w.nVec, w.vecLen)
	if err != nil {
		return nil, err
	}
	local, err := w.run(fs, cfg.Async, 0)
	fs.Close()
	if err != nil {
		return nil, fmt.Errorf("experiments: local arm: %w", err)
	}
	local.Arm = "local"
	local.LocalFraction = 1
	rows := []TierAblationRow{local}

	cacheVecs := func(frac float64) int {
		cv := int(frac*float64(w.nVec) + 0.5)
		if cv < 1 {
			cv = 1
		}
		return cv
	}

	for ri, rtt := range cfg.RTTs {
		srv, err := remote.NewServer(remote.ServerConfig{
			Device: iosim.Device{Name: "wan", Latency: rtt, Bandwidth: 500e6},
		})
		if err != nil {
			return nil, err
		}
		runTiered := func(arm, object, cacheDir string, cacheFrac float64, policy time.Duration) (TierAblationRow, error) {
			var obj *ooc.ObjectStore
			obj, err := ooc.OpenObjectStore(srv.ObjectURL(object), w.nVec, w.vecLen)
			if err != nil {
				obj, err = ooc.NewObjectStore(srv.ObjectURL(object), w.nVec, w.vecLen)
			}
			if err != nil {
				return TierAblationRow{}, err
			}
			defer obj.Close()
			ts, err := ooc.NewTieredStore(obj, ooc.TieredConfig{
				NumVectors: w.nVec, VectorLen: w.vecLen,
				CacheDir: cacheDir, CacheVectors: cacheVecs(cacheFrac),
				Lanes: cfg.Lanes, EstRTT: rtt,
			})
			if err != nil {
				return TierAblationRow{}, err
			}
			row, rerr := w.run(ts, cfg.Async, policy)
			tst := ts.Stats()
			if cerr := ts.Close(); cerr != nil && rerr == nil {
				rerr = cerr
			}
			if rerr != nil {
				return row, fmt.Errorf("experiments: %s arm at %v: %w", arm, rtt, rerr)
			}
			row.Arm = arm
			row.RTT = rtt
			row.Tier = tst
			row.LocalFraction = localFraction(row.Manager, tst, row.PolicyRecomputes)
			return row, nil
		}

		armDir := func(name string) string {
			d := filepath.Join(dir, fmt.Sprintf("%s-%d", name, ri))
			os.MkdirAll(d, 0o755)
			return d
		}
		cold, err := runTiered("cold", fmt.Sprintf("cold-%d", ri), armDir("cold"), cfg.ColdCacheFraction, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, cold)

		// Warm arm: one untimed priming run populates cache and remote,
		// then the measured run reopens the same cache directory.
		warmDir := armDir("warm")
		warmObj := fmt.Sprintf("warm-%d", ri)
		if _, err := runTiered("warm-prime", warmObj, warmDir, 1.0, 0); err != nil {
			return nil, err
		}
		warm, err := runTiered("warm", warmObj, warmDir, 1.0, 0)
		if err != nil {
			return nil, err
		}
		if !warm.Tier.WarmStart {
			return nil, fmt.Errorf("experiments: warm arm at %v did not adopt the primed cache", rtt)
		}
		rows = append(rows, warm)

		rec, err := runTiered("recompute", fmt.Sprintf("rec-%d", ri), armDir("rec"), cfg.RecomputeCacheFraction, rtt/2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rec)
		srv.Close()

		// Acceptance counters: every arm bit-identical; the warm cache
		// serves (or the policy skips) at least 70% of read demand.
		for _, r := range []TierAblationRow{cold, warm, rec} {
			if r.LnL != local.LnL {
				return nil, fmt.Errorf("experiments: %s arm at %v diverged: %.10f != %.10f",
					r.Arm, rtt, r.LnL, local.LnL)
			}
		}
		if warm.LocalFraction < 0.70 {
			return nil, fmt.Errorf("experiments: warm arm at %v served only %.0f%% locally",
				rtt, 100*warm.LocalFraction)
		}
		if cfg.CheckWallClock && rtt == 10*time.Millisecond &&
			warm.Elapsed > local.Elapsed+local.Elapsed/4 {
			return nil, fmt.Errorf("experiments: warm arm at %v took %v vs local %v (> 1.25x)",
				rtt, warm.Elapsed, local.Elapsed)
		}
	}
	return rows, nil
}

// WriteTierTable renders the ablation rows.
func WriteTierTable(w io.Writer, rows []TierAblationRow, cfg TierAblationConfig) {
	cfg.fill()
	fmt.Fprintf(w, "Tiered storage ablation: %d taxa, %d sites, f=%.2f, lanes=%d, async=%v\n",
		cfg.Workload.Taxa, cfg.Workload.Sites, cfg.MemFraction, cfg.Lanes, cfg.Async)
	fmt.Fprintf(w, "%-10s %8s %10s %9s %9s %9s %9s %8s %7s\n",
		"arm", "rtt", "elapsed", "cacheHit", "cacheMiss", "remVecRd", "coalesced", "policy", "local%")
	var base time.Duration
	for _, r := range rows {
		if r.Arm == "local" {
			base = r.Elapsed
		}
		fmt.Fprintf(w, "%-10s %8s %10s %9d %9d %9d %9d %8d %6.1f%%",
			r.Arm, r.RTT, r.Elapsed.Round(time.Millisecond),
			r.Tier.CacheHits, r.Tier.CacheMisses, r.Tier.RemoteVectorsRead,
			r.Tier.Coalesced, r.PolicyRecomputes, 100*r.LocalFraction)
		if base > 0 {
			fmt.Fprintf(w, "  (%.2fx)", float64(r.Elapsed)/float64(base))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "lnL identical across all %d rows: %.6f\n", len(rows), rows[0].LnL)
}
