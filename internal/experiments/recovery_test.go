package experiments

import (
	"bytes"
	"strings"
	"testing"

	"oocphylo/internal/ooc"
)

// TestFaultRecoveryEquivalence is the tentpole's acceptance test: a
// workload over a FaultStore injecting transient EIO, torn writes and
// bit flips must finish with the bit-identical final log-likelihood of
// a fault-free run — for the synchronous AND the asynchronous manager
// (RunRecoveryAblation enforces the equality internally and errors out
// on divergence). The CI soak runs this with -count=5; the seed loop
// below varies the fault sequence within each run as well.
func TestFaultRecoveryEquivalence(t *testing.T) {
	for _, seed := range []int64{5, 23, 71} {
		seed := seed
		t.Run("seed"+string(rune('0'+seed%10)), func(t *testing.T) {
			cfg := RecoveryConfig{
				Taxa: 24, Sites: 64, Seed: seed, Traversals: 2,
				Faults: ooc.FaultConfig{
					Seed:     seed * 131,
					PReadErr: 0.10, MaxReadErrs: 6,
					PWriteErr: 0.10, MaxWriteErrs: 6,
					PTornWrite: 0.10, MaxTornWrites: 4,
					PBitFlip: 0.25, MaxBitFlips: 4,
				},
				Retries: 8,
			}
			rows, err := RunRecoveryAblation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 2 {
				t.Fatalf("expected sync+async rows, got %d", len(rows))
			}
			if rows[0].Async || !rows[1].Async {
				t.Fatalf("row order wrong: %+v", rows)
			}
			for _, r := range rows {
				mode := "sync"
				if r.Async {
					mode = "async"
				}
				// The acceptance criterion names all three fault kinds.
				if r.Faults.ReadErrs+r.Faults.WriteErrs == 0 {
					t.Errorf("%s: no transient EIO injected: %+v", mode, r.Faults)
				}
				if r.Faults.TornWrites == 0 {
					t.Errorf("%s: no torn write injected: %+v", mode, r.Faults)
				}
				if r.Faults.BitFlips == 0 {
					t.Errorf("%s: no bit flip injected: %+v", mode, r.Faults)
				}
				if r.Retries == 0 {
					t.Errorf("%s: EIOs injected but PipelineStats reports no retries", mode)
				}
				if r.Detected == 0 {
					t.Errorf("%s: corruption injected but checksum layer detected none", mode)
				}
				if r.Recoveries == 0 {
					t.Errorf("%s: corruption detected but the engine recovered nothing", mode)
				}
				if r.ExtraNewviews < 0 {
					t.Errorf("%s: faulted run did FEWER newviews than clean: %d", mode, r.ExtraNewviews)
				}
			}
		})
	}

	var buf bytes.Buffer
	rows := []RecoveryRow{{Async: true, LnL: -123.45, Recoveries: 2}}
	WriteRecoveryTable(&buf, rows, RecoveryConfig{})
	for _, want := range []string{"mode", "torn", "retries", "recovered", "lnL", "async"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("recovery table missing %q:\n%s", want, buf.String())
		}
	}
}
