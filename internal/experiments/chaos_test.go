package experiments

import (
	"strings"
	"testing"
	"time"

	"oocphylo/internal/iosim"
)

// smallChaosConfig keeps the soak fast enough for the unit suite while
// still forcing partitions, breaker trips and journal traffic. The
// stall duration stays above the deadline so stalls become timeouts.
func smallChaosConfig() ChaosSoakConfig {
	return ChaosSoakConfig{
		Workload: SearchWorkloadConfig{
			Taxa: 24, Sites: 80, Seed: 5, SPRRadius: 3, Rounds: 1,
		},
		Chaos: iosim.ChaosConfig{
			Seed:           11,
			DropProb:       0.06,
			ErrorProb:      0.06,
			CorruptProb:    0.03,
			TruncateProb:   0.03,
			PartitionEvery: 12, PartitionFor: 10,
		},
		RemoteDeadline: 100 * time.Millisecond,
		HedgeAfter:     20 * time.Millisecond,
	}
}

// TestChaosSoak is the acceptance run: search over a remote store that
// drops, lies, stalls and partitions must end bit-identical to the
// clean run, with the breaker having tripped and the journal drained.
// RunChaosSoak enforces all of that internally; the test adds checks
// on the texture of the run — faults of several kinds actually fired
// and the engine visibly absorbed them.
func TestChaosSoak(t *testing.T) {
	cfg := smallChaosConfig()
	res, err := RunChaosSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos.Partitioned == 0 {
		t.Errorf("flap schedule never partitioned: %+v", res.Chaos)
	}
	if res.Tier.ShortCircuits == 0 {
		t.Errorf("breaker opened %d times but short-circuited nothing", res.Tier.BreakerOpens)
	}
	if res.Recoveries == 0 && res.DegradedRecomputes == 0 {
		t.Error("engine reports no recoveries and no degraded recomputes — the faults never reached it")
	}
	var sb strings.Builder
	WriteChaosTable(&sb, res, cfg)
	for _, want := range []string{"bit-identical", "breaker opens", "journal", "depth 0"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table missing %q:\n%s", want, sb.String())
		}
	}
	t.Logf("\n%s", sb.String())
}

// TestChaosSoakDeterministicInjection pins the chaos policy itself:
// the same seed and request order must yield the same fault sequence.
func TestChaosSoakDeterministicInjection(t *testing.T) {
	mix := iosim.ChaosConfig{Seed: 3, DropProb: 0.2, ErrorProb: 0.2, CorruptProb: 0.1}
	a, b := iosim.NewChaos(mix), iosim.NewChaos(mix)
	for i := 0; i < 500; i++ {
		fa, _ := a.Next()
		fb, _ := b.Next()
		if fa != fb {
			t.Fatalf("request %d: %v != %v with identical seeds", i, fa, fb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}
