package experiments

import (
	"strings"
	"testing"
	"time"
)

// smallTierConfig keeps the ablation fast enough for the unit suite
// while preserving every ratio the assertions turn on.
func smallTierConfig() TierAblationConfig {
	return TierAblationConfig{
		Workload: SearchWorkloadConfig{
			Taxa: 24, Sites: 80, Seed: 5, SPRRadius: 3, Rounds: 1,
		},
		RTTs: []time.Duration{2 * time.Millisecond},
	}
}

// TestTierAblationArms runs the full four-arm ablation at one injected
// RTT. RunTierAblation itself enforces the acceptance counters: every
// arm bit-identical to the local FileStore baseline and the warm arm
// serving >= 70% of read demand without a remote trip.
func TestTierAblationArms(t *testing.T) {
	rows, err := RunTierAblation(smallTierConfig())
	if err != nil {
		t.Fatal(err)
	}
	// local + (cold, warm, recompute) per RTT.
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byArm := map[string]TierAblationRow{}
	for _, r := range rows {
		byArm[r.Arm] = r
	}
	cold, warm := byArm["cold"], byArm["warm"]
	if cold.Tier.RemoteVectorsRead == 0 {
		t.Errorf("cold arm never read from the remote tier: %+v", cold.Tier)
	}
	if !warm.Tier.WarmStart {
		t.Error("warm arm did not warm-start")
	}
	if warm.LocalFraction < cold.LocalFraction {
		t.Errorf("warm served less locally than cold: %.2f < %.2f",
			warm.LocalFraction, cold.LocalFraction)
	}
	var sb strings.Builder
	WriteTierTable(&sb, rows, smallTierConfig())
	for _, want := range []string{"local", "cold", "warm", "recompute", "lnL identical"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table missing %q:\n%s", want, sb.String())
		}
	}
	t.Logf("\n%s", sb.String())
}

// TestTierAblationRecomputePolicyFires checks the recompute arm at a
// punishing RTT: the policy must convert at least one remote fetch and
// the likelihood must still match bit-for-bit (RunTierAblation errors
// otherwise).
func TestTierAblationRecomputePolicyFires(t *testing.T) {
	cfg := smallTierConfig()
	cfg.Workload.Taxa = 16
	cfg.Workload.Sites = 60
	cfg.Workload.SPRRadius = 2
	cfg.RTTs = []time.Duration{8 * time.Millisecond}
	cfg.RecomputeCacheFraction = 0.1
	rows, err := RunTierAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Arm == "recompute" {
			if r.PolicyRecomputes == 0 {
				t.Errorf("policy never fired on a starved cache at 20ms RTT: %+v", r)
			}
			return
		}
	}
	t.Fatal("no recompute row")
}

// TestTierAblationAsyncPipeline is the differential arm of the suite:
// the async I/O pipeline over the tiered stack must be bit-identical
// too (RunTierAblation compares against the async local baseline).
func TestTierAblationAsyncPipeline(t *testing.T) {
	cfg := smallTierConfig()
	cfg.Async = true
	if _, err := RunTierAblation(cfg); err != nil {
		t.Fatal(err)
	}
}
