package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"oocphylo/internal/iosim"
)

// Tiny dimensions with Realtime=0: the harness still enforces the
// sync/async correctness bar internally (identical lnL, Stats and
// prefetch ledgers), which is the property this test is after — the
// stall numbers themselves are only meaningful at the real defaults.
func TestAsyncAblationSmoke(t *testing.T) {
	cfg := AsyncAblationConfig{
		Taxa: 24, Sites: 64, Seed: 5, Traversals: 2,
		Realtime: -1, // fill() treats 0 as "default"; negative disables sleeping
		Device:   iosim.Device{Name: "test", Latency: time.Microsecond, Bandwidth: 1e9},
		Depths:   []int{1, 3},
	}
	rows, err := RunAsyncAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 depths, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Misses == 0 || r.Reads == 0 {
			t.Errorf("depth %d: workload produced no misses/reads: %+v", r.Depth, r)
		}
		if r.Pipeline.FetchesQueued == 0 && r.Prefetch.Reads > 0 {
			t.Errorf("depth %d: async run staged prefetches without queueing fetches", r.Depth)
		}
		if !r.Pipeline.Enabled {
			t.Errorf("depth %d: async run's pipeline stats not marked enabled", r.Depth)
		}
	}
	var buf bytes.Buffer
	WriteAsyncAblationTable(&buf, rows, cfg)
	out := buf.String()
	for _, want := range []string{"depth", "sync-stall", "hidden", "joined", "lnL"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation table missing %q:\n%s", want, out)
		}
	}
}
