package experiments

import (
	"fmt"
	"io"
	"time"

	"oocphylo/internal/iosim"
	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/sim"
)

// Async ablation — the paper's §5 prefetch-thread future work measured.
// The same Figure-5-style workload (k full tree traversals, the access
// pattern with the least locality) runs over a SimStore that sleeps for
// its modelled transfer time, once with the synchronous manager and
// once with the asynchronous pipeline, at several prefetch depths. The
// harness enforces the tentpole's correctness bar on every pair — bit
// identical log-likelihoods and identical miss counts — and reports the
// compute-thread stall time both ways, which is the quantity the
// pipeline exists to shrink.

// AsyncAblationConfig describes the sync-versus-async experiment.
type AsyncAblationConfig struct {
	// Taxa and Sites set the simulated dataset dimensions.
	Taxa, Sites int
	// Seed fixes the dataset.
	Seed int64
	// GammaAlpha sets rate heterogeneity (Γ4, as elsewhere).
	GammaAlpha float64
	// Traversals is the number of full traversals (Figure 5 uses 5).
	Traversals int
	// Fraction is the memory fraction f (slots = f·n).
	Fraction float64
	// Device models the backing store; Realtime scales its modelled
	// transfer time into real sleeping so overlap is observable.
	Device   iosim.Device
	Realtime float64
	// Workers and WriteBuffers configure the pipeline.
	Workers, WriteBuffers int
	// Depths are the prefetch depths to sweep (default {1, 2, 4}).
	Depths []int
}

func (c *AsyncAblationConfig) fill() {
	// The defaults are sized so per-step compute is comparable to one
	// vector transfer — the regime where pipelining pays (tiny vectors
	// make every workload latency-bound and nothing can hide the I/O).
	if c.Taxa == 0 {
		c.Taxa = 128
	}
	if c.Sites == 0 {
		c.Sites = 1024
	}
	if c.GammaAlpha == 0 {
		c.GammaAlpha = 0.8
	}
	if c.Traversals == 0 {
		c.Traversals = 5
	}
	if c.Fraction == 0 {
		c.Fraction = 0.25
	}
	if c.Device.Name == "" {
		// A fast-SSD-like device: enough latency for stalls to dominate
		// the sync run, small enough that the sweep stays quick.
		c.Device = iosim.Device{Name: "nvme", Latency: 150 * time.Microsecond, Bandwidth: 2e9}
	}
	if c.Realtime == 0 {
		c.Realtime = 1
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.WriteBuffers == 0 {
		c.WriteBuffers = 2
	}
	if len(c.Depths) == 0 {
		c.Depths = []int{1, 2, 4}
	}
}

// AsyncAblationRow is one prefetch depth of the ablation: the same
// workload synchronous versus pipelined.
type AsyncAblationRow struct {
	// Depth is the engine's prefetch depth for both runs.
	Depth int
	// SyncStall and AsyncStall are the compute-thread I/O stall times.
	SyncStall, AsyncStall time.Duration
	// SyncWall and AsyncWall are the measured wall-clock times.
	SyncWall, AsyncWall time.Duration
	// Misses is the (identical) demand-miss count of both runs.
	Misses int64
	// Reads is the (identical) demand store-read count of both runs.
	Reads int64
	// Prefetch is the (identical) prefetch ledger of both runs.
	Prefetch ooc.PrefetchStats
	// Pipeline is the async run's pipeline ledger.
	Pipeline ooc.PipelineStats
	// LnL is the (identical) final log-likelihood.
	LnL float64
}

// StallReduction returns 1 − async/sync stall: the fraction of
// compute-thread I/O waiting the pipeline hid.
func (r AsyncAblationRow) StallReduction() float64 {
	if r.SyncStall <= 0 {
		return 0
	}
	return 1 - float64(r.AsyncStall)/float64(r.SyncStall)
}

// ablationRun is one execution of the full-traversal workload.
type ablationRun struct {
	lnl   float64
	stats ooc.Stats
	pf    ooc.PrefetchStats
	pipe  ooc.PipelineStats
	wall  time.Duration
}

// asyncAblationRun executes the full-traversal workload once.
func asyncAblationRun(cfg AsyncAblationConfig, d *sim.Dataset, depth int, async bool) (ablationRun, error) {
	var r ablationRun
	vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
	n := d.Tree.NumInner()
	slots := ooc.SlotsForFraction(cfg.Fraction, n)
	var clock iosim.Clock
	store := ooc.NewSimStore(ooc.NewMemStore(n, vecLen), cfg.Device, &clock)
	store.Realtime = cfg.Realtime
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors: n, VectorLen: vecLen, Slots: slots,
		Strategy: ooc.NewLRU(n), ReadSkipping: true, Store: store,
		Async: async, IOWorkers: cfg.Workers, WriteBuffers: cfg.WriteBuffers,
	})
	if err != nil {
		return r, err
	}
	e, err := plf.New(d.Tree.Clone(), d.Patterns, d.Model, mgr)
	if err != nil {
		return r, err
	}
	e.EnablePrefetch(true)
	e.SetPrefetchDepth(depth)
	start := time.Now()
	lnl, _, err := fullTraversalWorkload(e, e.T, cfg.Traversals)
	if err != nil {
		return r, err
	}
	if err := mgr.Close(); err != nil {
		return r, err
	}
	r.wall = time.Since(start)
	r.lnl = lnl
	r.stats = mgr.Stats()
	r.pf = mgr.PrefetchStats()
	r.pipe = mgr.PipelineStats()
	return r, nil
}

// RunAsyncAblation sweeps the configured prefetch depths, running each
// workload synchronously and with the async pipeline, and fails if any
// pair violates the bit-identical-likelihood / identical-miss-count
// correctness bar.
func RunAsyncAblation(cfg AsyncAblationConfig) ([]AsyncAblationRow, error) {
	cfg.fill()
	d, err := sim.NewDataset(sim.Config{
		Taxa: cfg.Taxa, Sites: cfg.Sites, GammaAlpha: cfg.GammaAlpha, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	var out []AsyncAblationRow
	for _, depth := range cfg.Depths {
		s, err := asyncAblationRun(cfg, d, depth, false)
		if err != nil {
			return nil, fmt.Errorf("sync depth %d: %w", depth, err)
		}
		a, err := asyncAblationRun(cfg, d, depth, true)
		if err != nil {
			return nil, fmt.Errorf("async depth %d: %w", depth, err)
		}
		if s.lnl != a.lnl {
			return nil, fmt.Errorf("depth %d: likelihood diverged: sync %v, async %v", depth, s.lnl, a.lnl)
		}
		if s.stats != a.stats {
			return nil, fmt.Errorf("depth %d: manager counters diverged: sync %+v, async %+v", depth, s.stats, a.stats)
		}
		if s.pf != a.pf {
			return nil, fmt.Errorf("depth %d: prefetch counters diverged: sync %+v, async %+v", depth, s.pf, a.pf)
		}
		out = append(out, AsyncAblationRow{
			Depth:     depth,
			SyncStall: s.pipe.StallTime, AsyncStall: a.pipe.StallTime,
			SyncWall: s.wall, AsyncWall: a.wall,
			Misses: a.stats.Misses, Reads: a.stats.Reads,
			Prefetch: a.pf,
			Pipeline: a.pipe,
			LnL:      a.lnl,
		})
	}
	return out, nil
}

// WriteAsyncAblationTable renders the ablation as text.
func WriteAsyncAblationTable(w io.Writer, rows []AsyncAblationRow, cfg AsyncAblationConfig) {
	cfg.fill()
	fmt.Fprintf(w, "Async ablation: %d full traversals, %d taxa × %d sites, f=%.2f, device %s, %d workers\n",
		cfg.Traversals, cfg.Taxa, cfg.Sites, cfg.Fraction, cfg.Device.Name, cfg.Workers)
	fmt.Fprintf(w, "%6s %12s %12s %8s %12s %12s %8s %8s %8s %8s %14s\n",
		"depth", "sync-stall", "async-stall", "hidden", "sync-wall", "async-wall", "misses", "pf-reads", "pf-hits", "joined", "lnL")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %12v %12v %7.1f%% %12v %12v %8d %8d %8d %8d %14.2f\n",
			r.Depth,
			r.SyncStall.Round(time.Millisecond), r.AsyncStall.Round(time.Millisecond),
			100*r.StallReduction(),
			r.SyncWall.Round(time.Millisecond), r.AsyncWall.Round(time.Millisecond),
			r.Misses, r.Prefetch.Reads, r.Prefetch.Hits, r.Pipeline.JoinedFetches, r.LnL)
	}
}
