package experiments

import (
	"fmt"
	"io"
	"os"

	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/sim"
)

// Recovery ablation — the integrity tentpole's acceptance experiment.
// The same full-traversal workload runs twice per manager flavour: once
// over a clean store and once over a FaultStore injecting transient
// EIO, torn writes and bit flips underneath the ChecksumStore. The
// harness enforces the bar the fault-tolerance layer promises: the
// faulted run must finish with the bit-identical final log-likelihood
// of the clean run — corruption is converted into retries and extra
// newviews (the LvD recompute-vs-store tradeoff turned into a repair
// mechanism), never into a different answer or a failed run.

// RecoveryConfig describes the clean-versus-faulted experiment.
type RecoveryConfig struct {
	// Taxa and Sites set the simulated dataset dimensions.
	Taxa, Sites int
	// Seed fixes the dataset (and, offset, the fault sequence).
	Seed int64
	// GammaAlpha sets rate heterogeneity.
	GammaAlpha float64
	// Traversals is the number of full traversals.
	Traversals int
	// Fraction is the memory fraction f (slots = f·n).
	Fraction float64
	// Faults is the injection plan for the faulted runs.
	Faults ooc.FaultConfig
	// Retries configures the manager's transient-error retry budget. It
	// must exceed the largest per-category fault cap so an injected EIO
	// burst can never outlast the retry loop (the caps make recovery
	// equivalence deterministic rather than merely probable).
	Retries int
	// Workers and WriteBuffers configure the async pipeline.
	Workers, WriteBuffers int
}

func (c *RecoveryConfig) fill() {
	if c.Taxa == 0 {
		c.Taxa = 48
	}
	if c.Sites == 0 {
		c.Sites = 256
	}
	if c.GammaAlpha == 0 {
		c.GammaAlpha = 0.8
	}
	if c.Traversals == 0 {
		c.Traversals = 3
	}
	if c.Fraction == 0 {
		c.Fraction = 0.25
	}
	if c.Faults == (ooc.FaultConfig{}) {
		c.Faults = ooc.FaultConfig{
			Seed:     c.Seed + 99,
			PReadErr: 0.05, MaxReadErrs: 6,
			PWriteErr: 0.05, MaxWriteErrs: 6,
			PTornWrite: 0.05, MaxTornWrites: 4,
			// Bit flips only fire on reads that actually reach the store;
			// async scheduling jitters the die sequence, so the probability
			// is set high enough that every interleaving draws a flip.
			PBitFlip: 0.25, MaxBitFlips: 4,
		}
	}
	if c.Retries == 0 {
		c.Retries = 8
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.WriteBuffers == 0 {
		c.WriteBuffers = 2
	}
}

// RecoveryRow is one manager flavour of the ablation: the workload
// clean versus faulted.
type RecoveryRow struct {
	// Async reports which manager flavour the row describes.
	Async bool
	// LnL is the (identical) final log-likelihood of both runs.
	LnL float64
	// Faults is what the fault store actually injected.
	Faults ooc.FaultStats
	// Retries, CorruptReads and DroppedWritebacks are the faulted run's
	// pipeline integrity counters.
	Retries, CorruptReads, DroppedWritebacks int64
	// Detected is the checksum layer's failed-verification count.
	Detected int64
	// Recoveries is how many corrupt vectors the engine recomputed.
	Recoveries int64
	// ExtraNewviews is the recompute overhead: faulted minus clean
	// newview count.
	ExtraNewviews int64
}

// recoveryRun is one execution of the workload over a (possibly
// faulted) checksummed store.
type recoveryRun struct {
	lnl        float64
	newviews   int64
	recoveries int64
	pipe       ooc.PipelineStats
	detected   int64
	faults     ooc.FaultStats
}

// edgeSweepWorkload is the recovery ablation's access pattern: one full
// traversal, then per round a likelihood evaluation at every second
// edge. Unlike the pure full-traversal workload (where read skipping
// plus post-order locality means vectors are almost never read back),
// the edge hops constantly re-orient subtrees and fault stored vectors
// in with read intent — exactly the path where torn writes and bit
// flips must be detected and healed.
func edgeSweepWorkload(e *plf.Engine, rounds int) (float64, error) {
	if err := e.FullTraversal(e.T.Edges[0]); err != nil {
		return 0, err
	}
	var lnl float64
	for s := 0; s < rounds; s++ {
		for i := 0; i < len(e.T.Edges); i += 2 {
			l, err := e.LogLikelihoodAt(e.T.Edges[i])
			if err != nil {
				return 0, err
			}
			lnl = l
		}
	}
	return lnl, nil
}

// runRecoveryWorkload executes the edge-sweep workload once over
// Manager → ChecksumStore → [FaultStore →] MemStore.
func runRecoveryWorkload(cfg RecoveryConfig, d *sim.Dataset, async, faulted bool) (recoveryRun, error) {
	var r recoveryRun
	vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
	n := d.Tree.NumInner()
	slots := ooc.SlotsForFraction(cfg.Fraction, n)
	var base ooc.Store = ooc.NewMemStore(n, vecLen)
	var fstore *ooc.FaultStore
	if faulted {
		fstore = ooc.NewFaultStore(base, cfg.Faults)
		base = fstore
	}
	side, err := os.CreateTemp("", "oocphylo-recovery-*.sum")
	if err != nil {
		return r, err
	}
	sidePath := side.Name()
	side.Close()
	defer os.Remove(sidePath)
	cs, err := ooc.NewChecksumStore(base, sidePath, n, vecLen)
	if err != nil {
		return r, err
	}
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors: n, VectorLen: vecLen, Slots: slots,
		Strategy: ooc.NewLRU(n), ReadSkipping: true, Store: cs,
		Async: async, IOWorkers: cfg.Workers, WriteBuffers: cfg.WriteBuffers,
		Retry: ooc.RetryPolicy{Max: cfg.Retries},
	})
	if err != nil {
		return r, err
	}
	e, err := plf.New(d.Tree.Clone(), d.Patterns, d.Model, mgr)
	if err != nil {
		return r, err
	}
	e.EnablePrefetch(true)
	e.SetPrefetchDepth(1)
	lnl, err := edgeSweepWorkload(e, cfg.Traversals)
	if err != nil {
		return r, err
	}
	if err := mgr.Close(); err != nil {
		return r, err
	}
	if err := cs.Close(); err != nil {
		return r, err
	}
	r.lnl = lnl
	r.newviews = e.Stats.Newviews
	r.recoveries = e.Stats.Recoveries
	r.pipe = mgr.PipelineStats()
	r.detected = cs.CorruptReads()
	if fstore != nil {
		r.faults = fstore.Stats()
	}
	return r, nil
}

// RunRecoveryAblation runs the workload clean and faulted for both the
// synchronous and the asynchronous manager, failing if any faulted run
// does not reproduce its clean run's log-likelihood bit for bit.
func RunRecoveryAblation(cfg RecoveryConfig) ([]RecoveryRow, error) {
	cfg.fill()
	d, err := sim.NewDataset(sim.Config{
		Taxa: cfg.Taxa, Sites: cfg.Sites, GammaAlpha: cfg.GammaAlpha, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	var out []RecoveryRow
	for _, async := range []bool{false, true} {
		clean, err := runRecoveryWorkload(cfg, d, async, false)
		if err != nil {
			return nil, fmt.Errorf("clean async=%v: %w", async, err)
		}
		faulted, err := runRecoveryWorkload(cfg, d, async, true)
		if err != nil {
			return nil, fmt.Errorf("faulted async=%v: %w", async, err)
		}
		if clean.lnl != faulted.lnl {
			return nil, fmt.Errorf("async=%v: recovery changed the answer: clean lnL %v, faulted %v",
				async, clean.lnl, faulted.lnl)
		}
		out = append(out, RecoveryRow{
			Async:   async,
			LnL:     faulted.lnl,
			Faults:  faulted.faults,
			Retries: faulted.pipe.Retries, CorruptReads: faulted.pipe.CorruptReads,
			DroppedWritebacks: faulted.pipe.DroppedWritebacks,
			Detected:          faulted.detected,
			Recoveries:        faulted.recoveries,
			ExtraNewviews:     faulted.newviews - clean.newviews,
		})
	}
	return out, nil
}

// WriteRecoveryTable renders the ablation as text.
func WriteRecoveryTable(w io.Writer, rows []RecoveryRow, cfg RecoveryConfig) {
	cfg.fill()
	fmt.Fprintf(w, "Recovery ablation: %d full traversals, %d taxa × %d sites, f=%.2f, retries %d\n",
		cfg.Traversals, cfg.Taxa, cfg.Sites, cfg.Fraction, cfg.Retries)
	fmt.Fprintf(w, "%6s %5s %5s %5s %5s %8s %8s %8s %10s %8s %14s\n",
		"mode", "eio-r", "eio-w", "torn", "flips", "retries", "corrupt", "dropped", "recovered", "+nv", "lnL")
	for _, r := range rows {
		mode := "sync"
		if r.Async {
			mode = "async"
		}
		fmt.Fprintf(w, "%6s %5d %5d %5d %5d %8d %8d %8d %10d %8d %14.2f\n",
			mode, r.Faults.ReadErrs, r.Faults.WriteErrs, r.Faults.TornWrites, r.Faults.BitFlips,
			r.Retries, r.CorruptReads, r.DroppedWritebacks, r.Recoveries, r.ExtraNewviews, r.LnL)
	}
}
