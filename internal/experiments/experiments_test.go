package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Small dimensions keep the suite fast; the assertions are about the
// *shapes* the paper reports, which hold at any scale.
var testCfg = SearchWorkloadConfig{Taxa: 40, Sites: 80, Seed: 7, Rounds: 1, SPRRadius: 4}

func TestFigure2Shapes(t *testing.T) {
	results, err := RunFigure2(testCfg, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4*3 {
		t.Fatalf("expected 12 points, got %d", len(results))
	}
	// §4.1 determinism: identical final likelihood everywhere.
	for _, r := range results[1:] {
		if r.LnL != results[0].LnL {
			t.Fatalf("lnL differs across configurations: %v vs %v (%s f=%v)",
				r.LnL, results[0].LnL, r.Strategy, r.F)
		}
	}
	// Per strategy: miss rate decreases as f grows.
	byStrategy := map[string][]MissRateResult{}
	for _, r := range results {
		byStrategy[r.Strategy] = append(byStrategy[r.Strategy], r)
	}
	for name, rs := range byStrategy {
		for i := 1; i < len(rs); i++ {
			if rs[i].F < rs[i-1].F {
				t.Fatalf("%s results out of f order", name)
			}
			if rs[i].Stats.MissRate() > rs[i-1].Stats.MissRate()+1e-9 {
				t.Errorf("%s: miss rate not decreasing with f: %v", name, rs)
			}
		}
	}
	// Without read skipping, read rate == miss rate.
	for _, r := range results {
		if r.Stats.ReadRate() != r.Stats.MissRate() {
			t.Errorf("%s f=%v: read rate %v != miss rate %v without skipping",
				r.Strategy, r.F, r.Stats.ReadRate(), r.Stats.MissRate())
		}
	}
	// The paper's ranking: LFU is clearly the worst performer.
	lfu := avgMiss(byStrategy["LFU"])
	for _, other := range []string{"LRU", "RAND", "Topological"} {
		if lfu <= avgMiss(byStrategy[other]) {
			t.Errorf("LFU (%v) should be worse than %s (%v)", lfu, other, avgMiss(byStrategy[other]))
		}
	}
}

func avgMiss(rs []MissRateResult) float64 {
	s := 0.0
	for _, r := range rs {
		s += r.Stats.MissRate()
	}
	return s / float64(len(rs))
}

func TestFigure3ReadSkippingLowersReads(t *testing.T) {
	plain, err := RunFigure2(testCfg, []float64{0.25}, false)
	if err != nil {
		t.Fatal(err)
	}
	skipped, err := RunFigure2(testCfg, []float64{0.25}, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if skipped[i].LnL != plain[i].LnL {
			t.Errorf("read skipping changed the result for %s", plain[i].Strategy)
		}
		if skipped[i].Stats.Misses != plain[i].Stats.Misses {
			t.Errorf("%s: read skipping must not change miss behaviour", plain[i].Strategy)
		}
		if skipped[i].Stats.ReadRate() >= plain[i].Stats.ReadRate() {
			t.Errorf("%s: read skipping did not reduce reads (%v vs %v)",
				plain[i].Strategy, skipped[i].Stats.ReadRate(), plain[i].Stats.ReadRate())
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	results, err := RunFigure4(testCfg, 0.75, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 3 {
		t.Fatalf("halving sweep too short: %d points", len(results))
	}
	// f decreases along the sweep, miss rate must not decrease.
	for i := 1; i < len(results); i++ {
		if results[i].F >= results[i-1].F {
			t.Fatal("fractions must decrease")
		}
		if results[i].Stats.MissRate() < results[i-1].Stats.MissRate()-1e-9 {
			t.Errorf("miss rate should grow as f shrinks: %v then %v",
				results[i-1].Stats.MissRate(), results[i].Stats.MissRate())
		}
		if results[i].LnL != results[0].LnL {
			t.Error("determinism violated in figure 4 sweep")
		}
	}
	last := results[len(results)-1]
	if last.Slots != 5 {
		t.Errorf("sweep should end at 5 slots (the paper's minimum), got %d", last.Slots)
	}
	// Even at five slots the workload retains locality: misses stay well
	// below half of all requests (the paper reports ~20%).
	if mr := last.Stats.MissRate(); mr >= 0.5 {
		t.Errorf("5-slot miss rate %v; locality claim would fail", mr)
	}
}

func TestFigure5Shapes(t *testing.T) {
	cfg := Figure5Config{
		Taxa:     32,
		Widths:   []int{64, 1024, 3072},
		RAMBytes: 3 << 20,
		Seed:     3,
	}
	rows, err := RunFigure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(rows))
	}
	for i, r := range rows {
		if r.LnLStandard != r.LnLOOC {
			t.Fatalf("row %d: standard and ooc likelihoods differ", i)
		}
		if i > 0 && r.FootprintBytes <= rows[i-1].FootprintBytes {
			t.Fatal("footprints must grow with width")
		}
		if i > 0 && r.MajorFaults < rows[i-1].MajorFaults {
			t.Errorf("page faults should not shrink as footprint grows: %v", rows)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.OverSubscription >= 1 {
		t.Fatal("first width should fit in RAM; adjust test geometry")
	}
	if last.OverSubscription <= 2 {
		t.Fatal("last width should oversubscribe RAM; adjust test geometry")
	}
	// In-RAM: the standard version pays no I/O at all.
	if first.StandardIO != 0 || first.MajorFaults != 0 {
		t.Errorf("fits-in-RAM run should not fault: io=%v faults=%d", first.StandardIO, first.MajorFaults)
	}
	// Oversubscribed: out-of-core I/O must beat paging I/O clearly.
	if last.OOCLRUIO*2 >= last.StandardIO {
		t.Errorf("ooc (lru io %v) should beat paging (io %v) by >2x when oversubscribed",
			last.OOCLRUIO, last.StandardIO)
	}
	if last.MajorFaults == 0 {
		t.Error("oversubscribed paging run must fault")
	}
}

func TestNewStrategyUnknown(t *testing.T) {
	if _, err := NewStrategy("FIFO", 10, nil, 1); err == nil {
		t.Error("unknown strategy must error")
	}
}

func TestTableWriters(t *testing.T) {
	results, err := RunFigure2(SearchWorkloadConfig{Taxa: 24, Sites: 40, Seed: 1, Rounds: 1, SPRRadius: 3},
		[]float64{0.5}, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteMissRateTable(&buf, results, "Figure 2")
	out := buf.String()
	for _, want := range []string{"Figure 2", "LRU", "LFU", "RAND", "Topological", "miss%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	cfg := Figure5Config{Taxa: 24, Widths: []int{64, 512}, RAMBytes: 1 << 20, Seed: 2}
	rows, err := RunFigure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	WriteFigure5Table(&buf, rows, cfg)
	if !strings.Contains(buf.String(), "pagefaults") || !strings.Contains(buf.String(), "ooc-lru") {
		t.Errorf("figure 5 table malformed:\n%s", buf.String())
	}
}
