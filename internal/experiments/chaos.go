package experiments

// Chaos soak: the proof obligation of the network fault-tolerance
// layer. One deterministic tree search runs twice — once against a
// clean local store (the reference bits) and once against a loopback
// remote object store whose every request passes through a seeded
// chaos policy: connection drops, stalls past the client deadline,
// mid-body truncations, 503 bursts, corrupt payloads, and a scheduled
// partition that flaps the remote up and down for whole request
// windows. The fault-tolerance stack underneath the engine — jittered
// retries, per-request deadlines, hedged reads, the circuit breaker,
// degraded-mode recompute, and the crash-safe write-back spill
// journal — must turn all of that into nothing more than extra local
// compute: the soak FAILS unless the chaotic run finishes with
// bit-identical likelihood, the breaker actually tripped (the chaos
// was real), and after recovery the journal replays every absorbed
// write-back to the remote store and drains to empty.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"oocphylo/internal/iosim"
	"oocphylo/internal/ooc"
	"oocphylo/internal/ooc/remote"
	"oocphylo/internal/plf"
	"oocphylo/internal/search"
	"oocphylo/internal/tree"
)

// ChaosSoakConfig configures RunChaosSoak.
type ChaosSoakConfig struct {
	// Workload is the shared search workload (defaults as in the tier
	// ablation: 128 taxa).
	Workload SearchWorkloadConfig
	// MemFraction sets the manager's RAM-slot fraction (default 0.25).
	MemFraction float64
	// CacheFraction sizes the local cache tier as a fraction of the
	// vector count (default 0.35 — small enough that remote traffic,
	// and therefore injected faults, actually happen).
	CacheFraction float64
	// Lanes is the tiered store's remote fan-out (default 2).
	Lanes int
	// Chaos is the fault mix. Zero-valued fields get soak defaults: a
	// few percent each of drops, stalls, truncations, 503s and corrupt
	// bodies, plus a partition flap schedule (40 healthy requests, then
	// 12 dropped wholesale, repeating).
	Chaos iosim.ChaosConfig
	// RemoteDeadline bounds each remote attempt (default 250ms — a
	// stalled request trips it instead of hanging the lane).
	RemoteDeadline time.Duration
	// HedgeAfter launches the tail hedge (default 50ms).
	HedgeAfter time.Duration
	// Breaker is the circuit-breaker config (default threshold 4,
	// cooldown 100ms — short, so the soak exercises several
	// open/half-open/closed cycles inside one search).
	Breaker ooc.BreakerConfig
	// Dir is the scratch directory (default: fresh temp dir, removed
	// afterwards).
	Dir string
}

func (c *ChaosSoakConfig) fill() {
	c.Workload.fill()
	if c.MemFraction == 0 {
		c.MemFraction = 0.25
	}
	if c.CacheFraction == 0 {
		c.CacheFraction = 0.35
	}
	if c.Lanes == 0 {
		c.Lanes = 2
	}
	ch := &c.Chaos
	if ch.DropProb == 0 && ch.StallProb == 0 && ch.TruncateProb == 0 &&
		ch.ErrorProb == 0 && ch.CorruptProb == 0 {
		ch.DropProb, ch.StallProb, ch.TruncateProb = 0.04, 0.02, 0.02
		ch.ErrorProb, ch.CorruptProb = 0.04, 0.02
	}
	if ch.Stall == 0 {
		ch.Stall = 400 * time.Millisecond // > RemoteDeadline: stalls become timeouts
	}
	if ch.PartitionEvery == 0 && ch.PartitionFor == 0 {
		ch.PartitionEvery, ch.PartitionFor = 40, 12
	}
	if c.RemoteDeadline == 0 {
		c.RemoteDeadline = 250 * time.Millisecond
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 50 * time.Millisecond
	}
	if c.Breaker.Threshold == 0 {
		c.Breaker = ooc.BreakerConfig{Threshold: 4, Cooldown: 100 * time.Millisecond}
	}
}

// ChaosSoakResult reports what the soak survived.
type ChaosSoakResult struct {
	// LnL is the final likelihood — identical between arms by
	// construction (the run fails otherwise).
	LnL float64
	// CleanElapsed / ChaosElapsed are the two arms' wall-clocks.
	CleanElapsed, ChaosElapsed time.Duration
	// Chaos counts what the fault injector actually did.
	Chaos iosim.ChaosStats
	// Tier is the chaotic arm's tier counter snapshot (breaker trips,
	// hedges, journal traffic, retries).
	Tier ooc.TierStats
	// Recoveries counts engine-level read recoveries (unreadable or
	// corrupt vectors converted to recomputes); DegradedRecomputes the
	// plan-time conversions degraded mode forced.
	Recoveries, DegradedRecomputes int64
}

// RunChaosSoak runs both arms and enforces the acceptance conditions.
func RunChaosSoak(cfg ChaosSoakConfig) (*ChaosSoakResult, error) {
	cfg.fill()
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "chaos"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	w, err := newTierWorkload(cfg.Workload, cfg.MemFraction)
	if err != nil {
		return nil, err
	}
	res := &ChaosSoakResult{}

	// Clean arm: plain local backing file, the reference bits.
	fs, err := ooc.NewFileStore(filepath.Join(dir, "clean.vec"), w.nVec, w.vecLen)
	if err != nil {
		return nil, err
	}
	clean, err := w.run(fs, false, 0)
	fs.Close()
	if err != nil {
		return nil, fmt.Errorf("experiments: clean arm: %w", err)
	}
	res.LnL = clean.LnL
	res.CleanElapsed = clean.Elapsed

	// Chaotic arm: loopback remote behind the fault injector, full
	// fault-tolerance stack, and an OUTER checksum layer — the cache
	// tier trusts what it admits, so a corrupt GET body is only caught
	// by checksums ABOVE the tier, where the engine's recovery path
	// turns it into a recompute.
	chaos := iosim.NewChaos(cfg.Chaos)
	chaos.Disable() // hold fire while the stack comes up
	srv, err := remote.NewServer(remote.ServerConfig{
		Device: iosim.Device{Name: "wan", Latency: time.Millisecond, Bandwidth: 500e6},
		Chaos:  chaos,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	obj, err := ooc.NewObjectStore(srv.ObjectURL("soak"), w.nVec, w.vecLen)
	if err != nil {
		return nil, err
	}
	defer obj.Close()
	obj.SetDeadline(cfg.RemoteDeadline)
	cacheDir := filepath.Join(dir, "cache")
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, err
	}
	cacheVecs := int(cfg.CacheFraction*float64(w.nVec) + 0.5)
	if cacheVecs < 1 {
		cacheVecs = 1
	}
	ts, err := ooc.NewTieredStore(obj, ooc.TieredConfig{
		NumVectors: w.nVec, VectorLen: w.vecLen,
		CacheDir: cacheDir, CacheVectors: cacheVecs,
		Lanes:          cfg.Lanes,
		RemoteDeadline: cfg.RemoteDeadline,
		RemoteRetry:    ooc.RetryPolicy{Max: 2, Rand: rand.New(rand.NewSource(cfg.Workload.Seed + 7)).Float64},
		Breaker:        cfg.Breaker,
		HedgeAfter:     cfg.HedgeAfter,
	})
	if err != nil {
		return nil, err
	}
	cs, err := ooc.NewChecksumStore(ts, filepath.Join(dir, "soak.sum"), w.nVec, w.vecLen)
	if err != nil {
		ts.Close()
		return nil, err
	}

	chaos.Enable()
	chaotic, recov, degraded, err := runChaosArm(w, cs)
	if err != nil {
		cs.Close()
		return nil, fmt.Errorf("experiments: chaos arm: %w", err)
	}

	// Recovery phase: lift every fault, probe until the breaker
	// recloses (the workload has stopped, so nothing else feeds the
	// half-open probe), then flush. The spill journal must replay
	// whatever outages forced it to absorb and drain to empty — zero
	// lost write-backs.
	chaos.Disable()
	rctx, rcancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = ProbeChaosRecovery(rctx, ts)
	rcancel()
	if err != nil {
		cs.Close()
		return nil, fmt.Errorf("experiments: breaker never reclosed after recovery: %w", err)
	}
	if err := ts.Sync(); err != nil {
		cs.Close()
		return nil, fmt.Errorf("experiments: post-recovery sync: %w", err)
	}
	res.Tier = ts.Stats()
	if err := cs.Close(); err != nil {
		return nil, fmt.Errorf("experiments: close: %w", err)
	}
	res.ChaosElapsed = chaotic.Elapsed
	res.Chaos = chaos.Stats()
	res.Recoveries = recov
	res.DegradedRecomputes = degraded

	// Acceptance.
	if chaotic.LnL != clean.LnL {
		return nil, fmt.Errorf("experiments: chaos soak diverged: %.12f != clean %.12f",
			chaotic.LnL, clean.LnL)
	}
	injected := res.Chaos.Drops + res.Chaos.Stalls + res.Chaos.Truncations +
		res.Chaos.Errors + res.Chaos.Corruptions + res.Chaos.Partitioned
	if injected == 0 {
		return nil, fmt.Errorf("experiments: chaos soak injected no faults (%d requests) — nothing was proven", res.Chaos.Requests)
	}
	if res.Tier.BreakerOpens == 0 {
		return nil, fmt.Errorf("experiments: breaker never opened despite %d injected faults", injected)
	}
	// Zero lost write-backs: every absorbed record was either replayed
	// to the remote store or superseded by a newer dirty copy that
	// itself reached the store — depth 0 after a successful Sync is
	// exactly that invariant.
	if res.Tier.JournalDepth != 0 {
		return nil, fmt.Errorf("experiments: journal still holds %d vectors after recovery", res.Tier.JournalDepth)
	}
	return res, nil
}

// runChaosArm replays the identical search over the chaotic stack and
// returns the row plus the engine's recovery ledger.
func runChaosArm(w *tierWorkload, store ooc.Store) (TierAblationRow, int64, int64, error) {
	var row TierAblationRow
	names := make([]string, w.data.Tree.NumTips)
	for i := range names {
		names[i] = w.data.Tree.Nodes[i].Name
	}
	start, err := tree.RandomTopology(names, rand.New(rand.NewSource(w.cfg.Seed+1)), 0.05, 0.15)
	if err != nil {
		return row, 0, 0, err
	}
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors: w.nVec, VectorLen: w.vecLen, Slots: w.slots,
		Strategy: ooc.NewLRU(w.nVec), ReadSkipping: true,
		Store: store,
	})
	if err != nil {
		return row, 0, 0, err
	}
	e, err := plf.New(start, w.data.Patterns, w.data.Model, mgr)
	if err != nil {
		mgr.Close()
		return row, 0, 0, err
	}
	t0 := time.Now()
	sr, err := search.New(e, search.Options{
		SPRRadius: w.cfg.SPRRadius, MaxRounds: w.cfg.Rounds,
	}).Run()
	if err != nil {
		mgr.Close()
		return row, 0, 0, err
	}
	if err := mgr.Flush(); err != nil {
		mgr.Close()
		return row, 0, 0, err
	}
	if err := mgr.Close(); err != nil {
		return row, 0, 0, err
	}
	row.Elapsed = time.Since(t0)
	row.LnL = sr.LnL
	return row, e.Stats.Recoveries, e.Stats.DegradedRecomputes, nil
}

// ProbeChaosRecovery drives a degraded tier back to closed: called
// after Chaos.Disable, it probes until the breaker recloses or ctx
// expires. The soak's search traffic usually does this on its own (any
// dirty write-back doubles as a probe); this helper is for tests that
// stop the workload while the breaker is still open.
func ProbeChaosRecovery(ctx context.Context, ts *ooc.TieredStore) error {
	for ts.Degraded() {
		if err := ctx.Err(); err != nil {
			return err
		}
		_ = ts.ProbeRemote(ctx)
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// WriteChaosTable renders the soak result.
func WriteChaosTable(wr io.Writer, res *ChaosSoakResult, cfg ChaosSoakConfig) {
	cfg.fill()
	fmt.Fprintf(wr, "Chaos soak: %d taxa, %d sites, seed %d, deadline %v, hedge %v, breaker %d/%v\n",
		cfg.Workload.Taxa, cfg.Workload.Sites, cfg.Chaos.Seed,
		cfg.RemoteDeadline, cfg.HedgeAfter, cfg.Breaker.Threshold, cfg.Breaker.Cooldown)
	fmt.Fprintf(wr, "  lnL %.6f bit-identical to clean run (clean %v, chaos %v, %.2fx)\n",
		res.LnL, res.CleanElapsed.Round(time.Millisecond), res.ChaosElapsed.Round(time.Millisecond),
		float64(res.ChaosElapsed)/float64(res.CleanElapsed))
	c := res.Chaos
	fmt.Fprintf(wr, "  injected: %d drops, %d stalls, %d truncations, %d 5xx, %d corruptions, %d partitioned of %d requests\n",
		c.Drops, c.Stalls, c.Truncations, c.Errors, c.Corruptions, c.Partitioned, c.Requests)
	t := res.Tier
	fmt.Fprintf(wr, "  survived: %d remote errors, %d retries, %d breaker opens, %d short-circuits, %d hedges (%d won)\n",
		t.RemoteErrors, t.RemoteRetries, t.BreakerOpens, t.ShortCircuits, t.Hedges, t.HedgeWins)
	fmt.Fprintf(wr, "  journal: %d absorbed, %d replayed, depth %d after recovery; %d journal-served reads\n",
		t.JournalAppends, t.JournalReplayed, t.JournalDepth, t.JournalHits)
	fmt.Fprintf(wr, "  engine: %d read recoveries, %d degraded-mode recomputes\n",
		res.Recoveries, res.DegradedRecomputes)
}
