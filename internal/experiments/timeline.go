package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"oocphylo/internal/obs"
	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/sim"
)

// Timeline figure — the observability layer's acceptance experiment. A
// real out-of-core run (async pipeline, checksummed store, optional
// fault injection) executes fully instrumented, and the trace ring is
// exported as Chrome trace_event JSON: the compute lane and the I/O
// worker lanes side by side show prefetch overlap, join-wait residue,
// background write-backs and (when faults are on) the recovery markers
// followed by their recompute storms.

// TimelineConfig describes the traced run.
type TimelineConfig struct {
	// Taxa and Sites set the simulated dataset dimensions; the default
	// 128 taxa matches the paper's mid-size experiments.
	Taxa, Sites int
	// Seed fixes the dataset and fault sequence.
	Seed int64
	// GammaAlpha sets rate heterogeneity.
	GammaAlpha float64
	// Fraction is the memory fraction f (slots = f·n).
	Fraction float64
	// Rounds is the number of edge-sweep rounds after the initial full
	// traversal (the vector-lifecycle-rich workload from the recovery
	// ablation).
	Rounds int
	// Workers and WriteBuffers configure the async pipeline.
	Workers, WriteBuffers int
	// TraceCapacity bounds the event ring (default 65536 — enough to
	// keep the whole run at the default geometry).
	TraceCapacity int
	// WithFaults injects transient I/O faults and bit flips so the
	// timeline shows recovery events, not just steady-state paging.
	WithFaults bool
}

func (c *TimelineConfig) fill() {
	if c.Taxa == 0 {
		c.Taxa = 128
	}
	if c.Sites == 0 {
		c.Sites = 256
	}
	if c.GammaAlpha == 0 {
		c.GammaAlpha = 0.8
	}
	if c.Fraction == 0 {
		c.Fraction = 0.25
	}
	if c.Rounds == 0 {
		c.Rounds = 2
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.WriteBuffers == 0 {
		c.WriteBuffers = 2
	}
	if c.TraceCapacity == 0 {
		c.TraceCapacity = 65536
	}
}

// TimelineResult summarises the traced run.
type TimelineResult struct {
	// LnL is the final log-likelihood (bit-identical to an untraced run
	// — instrumentation observes, never steers).
	LnL float64
	// Events is the number of trace events held; Dropped how many the
	// ring overwrote.
	Events  int
	Dropped int64
	// Recoveries is the number of corrupt vectors healed during the run
	// (only nonzero with WithFaults).
	Recoveries int64
	// Snapshot is the full registry state at the end of the run.
	Snapshot *obs.Snapshot
}

// RunTimeline executes the instrumented workload and writes the Chrome
// trace JSON to traceW.
func RunTimeline(cfg TimelineConfig, traceW io.Writer) (TimelineResult, error) {
	var res TimelineResult
	cfg.fill()
	d, err := sim.NewDataset(sim.Config{
		Taxa: cfg.Taxa, Sites: cfg.Sites, GammaAlpha: cfg.GammaAlpha, Seed: cfg.Seed,
	})
	if err != nil {
		return res, err
	}
	vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
	n := d.Tree.NumInner()

	var base ooc.Store = ooc.NewMemStore(n, vecLen)
	if cfg.WithFaults {
		base = ooc.NewFaultStore(base, ooc.FaultConfig{
			Seed:     cfg.Seed + 99,
			PReadErr: 0.02, MaxReadErrs: 4,
			PBitFlip: 0.10, MaxBitFlips: 3,
		})
	}
	side, err := os.CreateTemp("", "oocphylo-timeline-*.sum")
	if err != nil {
		return res, err
	}
	sidePath := side.Name()
	side.Close()
	defer os.Remove(sidePath)
	cs, err := ooc.NewChecksumStore(base, sidePath, n, vecLen)
	if err != nil {
		return res, err
	}
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors: n, VectorLen: vecLen,
		Slots:    ooc.SlotsForFraction(cfg.Fraction, n),
		Strategy: ooc.NewLRU(n), ReadSkipping: true, Store: cs,
		Async: true, IOWorkers: cfg.Workers, WriteBuffers: cfg.WriteBuffers,
		Retry: ooc.RetryPolicy{Max: 8},
	})
	if err != nil {
		return res, err
	}
	e, err := plf.New(d.Tree.Clone(), d.Patterns, d.Model, mgr)
	if err != nil {
		return res, err
	}
	e.EnablePrefetch(true)

	reg := obs.NewRegistry()
	tr := obs.NewTracer(cfg.TraceCapacity)
	mgr.Instrument(reg, tr)
	ooc.InstrumentChecksumStore(reg, cs)
	e.Instrument(reg, tr)
	reg.SetInfo("run.workload", fmt.Sprintf("edge sweep, %d taxa, %d rounds", cfg.Taxa, cfg.Rounds))

	lnl, err := edgeSweepWorkload(e, cfg.Rounds)
	if err != nil {
		return res, err
	}
	if err := mgr.Close(); err != nil {
		return res, err
	}
	if err := cs.Close(); err != nil {
		return res, err
	}
	if traceW != nil {
		if err := tr.WriteChromeTrace(traceW); err != nil {
			return res, err
		}
	}
	res.LnL = lnl
	res.Events = tr.Len()
	res.Dropped = tr.Dropped()
	res.Recoveries = e.Stats.Recoveries
	res.Snapshot = reg.Snapshot()
	return res, nil
}

// ObsOverheadResult reports the instrumented-versus-bare wall time of
// the same workload — the acceptance bound on the obs layer's cost.
type ObsOverheadResult struct {
	// OffSeconds and OnSeconds are the best-of-reps wall times without
	// and with full instrumentation (registry + tracer); SpansSeconds
	// additionally runs the whole workload under a request span, so
	// every fault-in, eviction and kernel pass is span-recorded.
	OffSeconds, OnSeconds float64
	SpansSeconds          float64
	// OverheadPct is (on-off)/off in percent; negative values (noise)
	// mean the instrumented run happened to be faster. SpanOverheadPct
	// is the same ratio for the span-traced arm.
	OverheadPct     float64
	SpanOverheadPct float64
	// LnLOff, LnLOn and LnLSpans must be bit-identical: observation
	// never steers.
	LnLOff, LnLOn, LnLSpans float64
	// SpanCount is the number of spans the traced arm recorded (> 0
	// proves the arm actually traced).
	SpanCount int64
}

// Instrumentation arms of the overhead experiment.
const (
	obsArmOff   = iota // no registry, no tracer, nil spans
	obsArmOn           // registry + tracer (the PR-3 acceptance arm)
	obsArmSpans        // registry + tracer + a request span over the run
)

// RunObsOverhead measures the end-to-end cost of instrumentation on a
// full-traversal workload: reps repetitions each way, best wall time
// kept (minimum is the standard noise-robust choice for micro-scale
// wall clocks). Three arms: bare, metrics+ring, and metrics+ring with
// the whole workload under a request span.
func RunObsOverhead(taxa, sites, traversals, reps int, seed int64) (ObsOverheadResult, error) {
	var res ObsOverheadResult
	if taxa == 0 {
		taxa = 64
	}
	if sites == 0 {
		sites = 256
	}
	if traversals == 0 {
		traversals = 3
	}
	if reps == 0 {
		reps = 3
	}
	d, err := sim.NewDataset(sim.Config{Taxa: taxa, Sites: sites, GammaAlpha: 0.8, Seed: seed})
	if err != nil {
		return res, err
	}
	run := func(arm int) (float64, time.Duration, error) {
		vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
		n := d.Tree.NumInner()
		mgr, err := ooc.NewManager(ooc.Config{
			NumVectors: n, VectorLen: vecLen,
			Slots:    ooc.SlotsForFraction(0.25, n),
			Strategy: ooc.NewLRU(n), ReadSkipping: true,
			Store: ooc.NewMemStore(n, vecLen),
			Async: true, IOWorkers: 2,
		})
		if err != nil {
			return 0, 0, err
		}
		t := d.Tree.Clone()
		e, err := plf.New(t, d.Patterns, d.Model, mgr)
		if err != nil {
			return 0, 0, err
		}
		e.EnablePrefetch(true)
		var root *obs.Span
		if arm >= obsArmOn {
			reg := obs.NewRegistry()
			tr := obs.NewTracer(65536)
			mgr.Instrument(reg, tr)
			e.Instrument(reg, tr)
		}
		if arm == obsArmSpans {
			col := obs.NewSpanCollector(8)
			root = col.StartTrace("workload")
			e.SetSpan(root)
			defer func() {
				root.End()
				res.SpanCount = col.Total()
			}()
		}
		lnl, wall, err := fullTraversalWorkload(e, t, traversals)
		if err != nil {
			return 0, 0, err
		}
		if err := mgr.Close(); err != nil {
			return 0, 0, err
		}
		return lnl, wall, nil
	}
	best := func(arm int) (float64, float64, error) {
		bestWall := time.Duration(0)
		var lnl float64
		for i := 0; i < reps; i++ {
			l, wall, err := run(arm)
			if err != nil {
				return 0, 0, err
			}
			if i == 0 || wall < bestWall {
				bestWall = wall
			}
			lnl = l
		}
		return lnl, bestWall.Seconds(), nil
	}
	res.LnLOff, res.OffSeconds, err = best(obsArmOff)
	if err != nil {
		return res, err
	}
	res.LnLOn, res.OnSeconds, err = best(obsArmOn)
	if err != nil {
		return res, err
	}
	res.LnLSpans, res.SpansSeconds, err = best(obsArmSpans)
	if err != nil {
		return res, err
	}
	if res.LnLOff != res.LnLOn {
		return res, fmt.Errorf("experiments: instrumentation changed the answer: off %v, on %v",
			res.LnLOff, res.LnLOn)
	}
	if res.LnLOff != res.LnLSpans {
		return res, fmt.Errorf("experiments: span tracing changed the answer: off %v, spans %v",
			res.LnLOff, res.LnLSpans)
	}
	if res.OffSeconds > 0 {
		res.OverheadPct = (res.OnSeconds - res.OffSeconds) / res.OffSeconds * 100
		res.SpanOverheadPct = (res.SpansSeconds - res.OffSeconds) / res.OffSeconds * 100
	}
	return res, nil
}

// WriteTimelineSummary renders the run's headline numbers.
func WriteTimelineSummary(w io.Writer, cfg TimelineConfig, res TimelineResult) {
	cfg.fill()
	fmt.Fprintf(w, "# Timeline trace: %d taxa, %d sites, f=%.2f, %d fetch workers, faults=%v\n",
		cfg.Taxa, cfg.Sites, cfg.Fraction, cfg.Workers, cfg.WithFaults)
	fmt.Fprintf(w, "final lnL      %.6f\n", res.LnL)
	fmt.Fprintf(w, "trace events   %d (dropped %d)\n", res.Events, res.Dropped)
	fmt.Fprintf(w, "recoveries     %d\n", res.Recoveries)
	if res.Snapshot != nil {
		obs.WriteReport(w, res.Snapshot)
	}
}
