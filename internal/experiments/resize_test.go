package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRunResizeAblationSmall(t *testing.T) {
	cfg := ResizeAblationConfig{Taxa: 24, Sites: 120, Seed: 3, TraversalsPerPhase: 1}
	rows, err := RunResizeAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	perStrategy := map[string][]ResizePhaseRow{}
	for _, r := range rows {
		perStrategy[r.Strategy] = append(perStrategy[r.Strategy], r)
	}
	if len(perStrategy) != len(StrategyNames) {
		t.Fatalf("got strategies %v, want %v", len(perStrategy), len(StrategyNames))
	}
	var lnlBits uint64
	for name, seq := range perStrategy {
		// The schedule is shared, descending, and ends at the floor.
		for i := 1; i < len(seq); i++ {
			if seq[i].Slots >= seq[i-1].Slots {
				t.Errorf("%s: slots did not shrink: %d -> %d", name, seq[i-1].Slots, seq[i].Slots)
			}
		}
		last := seq[len(seq)-1]
		if last.Slots != cfg.MinSlots && last.Slots != 3 {
			t.Errorf("%s: trajectory ends at %d slots, want the floor", name, last.Slots)
		}
		for _, r := range seq {
			if r.Requests <= 0 {
				t.Errorf("%s phase %d: no requests recorded", name, r.Phase)
			}
			if lnlBits == 0 {
				lnlBits = math.Float64bits(r.LnL)
			} else if math.Float64bits(r.LnL) != lnlBits {
				t.Errorf("%s phase %d: lnL %.17g differs across segments", name, r.Phase, r.LnL)
			}
		}
	}

	var sb strings.Builder
	WriteResizeTable(&sb, rows, cfg)
	for _, want := range []string{"shrink trajectory", "strategy", "LRU", "RAND"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunResizeOverheadSmall(t *testing.T) {
	res, err := RunResizeOverhead(ResizeAblationConfig{Taxa: 24, Sites: 120, Seed: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resizes == 0 {
		t.Fatal("oscillating run never resized")
	}
	if math.Float64bits(res.ResizeLnL) != math.Float64bits(res.FixedLnL) {
		t.Errorf("lnL diverged: %.17g vs %.17g", res.ResizeLnL, res.FixedLnL)
	}
	if res.Low >= res.Slots {
		t.Errorf("low bound %d not below slots %d", res.Low, res.Slots)
	}
	// Shrinks evict, so the oscillating run cannot have done less store
	// traffic than the fixed run.
	if res.ResizeStats.Reads < res.FixedStats.Reads {
		t.Errorf("oscillating run read less than fixed: %d < %d",
			res.ResizeStats.Reads, res.FixedStats.Reads)
	}
}
