package vm

import (
	"testing"
	"time"

	"oocphylo/internal/iosim"
)

func newMem(t *testing.T, totalPages, physPages, readahead int) (*PagedMemory, *iosim.Clock) {
	t.Helper()
	var clock iosim.Clock
	m, err := New(Config{
		TotalBytes:    int64(totalPages) * DefaultPageSize,
		PhysicalBytes: int64(physPages) * DefaultPageSize,
		Readahead:     readahead,
		WriteCluster:  1,
		Device:        iosim.Device{Name: "test", Latency: time.Millisecond, Bandwidth: 4096e3}, // 1 page/ms
		Clock:         &clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, &clock
}

func TestFirstTouchIsFreeMinorFault(t *testing.T) {
	// Anonymous memory: first touch allocates a zeroed frame, no I/O.
	m, clock := newMem(t, 100, 10, 1)
	if err := m.Touch(0, DefaultPageSize, false); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.MinorFaults != 1 || st.MajorFaults != 0 || st.PagesRead != 0 {
		t.Errorf("first touch: %+v", st)
	}
	if clock.Elapsed() != 0 {
		t.Error("zero-fill faults must be free of device time")
	}
	// Second touch: plain hit.
	if err := m.Touch(0, DefaultPageSize, false); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.MinorFaults != 1 || st.Touches != 2 {
		t.Errorf("second touch: %+v", st)
	}
}

func TestSwapOutAndSwapInCycle(t *testing.T) {
	m, clock := newMem(t, 100, 1, 1)
	// Dirty page 0, then force it out with page 1.
	_ = m.Touch(0, 1, true)
	_ = m.Touch(DefaultPageSize, 1, false)
	if st := m.Stats(); st.PagesWritten != 1 {
		t.Fatalf("dirty eviction must write back: %+v", st)
	}
	afterWrite := clock.Elapsed()
	if afterWrite == 0 {
		t.Fatal("write-back must cost time")
	}
	// Re-touch page 0: now a major fault with a real read.
	_ = m.Touch(0, 1, false)
	if st := m.Stats(); st.MajorFaults != 1 || st.PagesRead != 1 {
		t.Fatalf("swap-in: %+v", st)
	}
	if clock.Elapsed() <= afterWrite {
		t.Error("swap-in must cost time")
	}
	// Clean re-eviction: copy still in swap, no second write.
	_ = m.Touch(2*DefaultPageSize, 1, false)
	if st := m.Stats(); st.PagesWritten != 1 {
		t.Errorf("clean eviction must not write again: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	m, _ := newMem(t, 100, 3, 1)
	for p := int64(0); p < 3; p++ {
		_ = m.Touch(p*DefaultPageSize, 1, false)
	}
	_ = m.Touch(0, 1, false) // refresh page 0; oldest is now 1
	_ = m.Touch(3*DefaultPageSize, 1, false)
	if m.resident[1] {
		t.Error("page 1 should have been the LRU victim")
	}
	if !m.resident[0] || !m.resident[2] || !m.resident[3] {
		t.Error("unexpected residency pattern")
	}
}

func TestReadaheadAmortisesSequentialSwapIns(t *testing.T) {
	// Prepare: dirty 640 pages through a tiny frame pool so they all end
	// up in swap; then compare sequential re-reads with and without
	// readahead.
	faultsWith := func(readahead int) int64 {
		m, _ := newMem(t, 1000, 8, readahead)
		for p := int64(0); p < 640; p++ {
			_ = m.Touch(p*DefaultPageSize, 1, true)
		}
		// Flush everything still resident by touching far pages.
		for p := int64(900); p < 908; p++ {
			_ = m.Touch(p*DefaultPageSize, 1, false)
		}
		m.ResetStats()
		for p := int64(0); p < 640; p++ {
			_ = m.Touch(p*DefaultPageSize, 1, false)
		}
		if m.Stats().PagesRead < 600 {
			t.Fatalf("setup broken: only %d pages read", m.Stats().PagesRead)
		}
		return m.Stats().MajorFaults
	}
	with := faultsWith(8)
	without := faultsWith(1)
	if with*7 > without {
		t.Errorf("readahead 8 should cut sequential faults ~8x: %d vs %d", with, without)
	}
}

func TestWriteClusteringAmortisesSwapOutLatency(t *testing.T) {
	run := func(cluster int) time.Duration {
		var clock iosim.Clock
		m, err := New(Config{
			TotalBytes:    1000 * DefaultPageSize,
			PhysicalBytes: 8 * DefaultPageSize,
			Readahead:     1,
			WriteCluster:  cluster,
			Device:        iosim.Device{Name: "t", Latency: time.Millisecond, Bandwidth: 4096e6},
			Clock:         &clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		for p := int64(0); p < 500; p++ {
			_ = m.Touch(p*DefaultPageSize, 1, true)
		}
		return clock.Elapsed()
	}
	clustered := run(32)
	unclustered := run(1)
	if clustered*10 > unclustered {
		t.Errorf("write clustering should cut swap-out latency ~32x: %v vs %v", clustered, unclustered)
	}
}

func TestTouchSpanningPages(t *testing.T) {
	m, _ := newMem(t, 100, 50, 1)
	if err := m.Touch(DefaultPageSize/2, 3*DefaultPageSize, false); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.MinorFaults != 4 {
		t.Errorf("span touch allocated %d pages, want 4", st.MinorFaults)
	}
}

func TestTouchBounds(t *testing.T) {
	m, _ := newMem(t, 10, 5, 1)
	if err := m.Touch(-1, 10, false); err == nil {
		t.Error("negative offset must fail")
	}
	if err := m.Touch(9*DefaultPageSize, 2*DefaultPageSize, false); err == nil {
		t.Error("overrun must fail")
	}
	if err := m.Touch(5, 0, false); err != nil {
		t.Error("zero-length touch is a no-op")
	}
}

func TestConfigValidation(t *testing.T) {
	var clock iosim.Clock
	bad := []Config{
		{TotalBytes: 0, PhysicalBytes: 4096, Clock: &clock},
		{TotalBytes: 4096, PhysicalBytes: 0, Clock: &clock},
		{TotalBytes: 4096, PhysicalBytes: 4096},               // no clock
		{TotalBytes: 4096, PhysicalBytes: 100, Clock: &clock}, // < 1 frame
		{TotalBytes: 4096, PhysicalBytes: 4096, PageSize: 64, Clock: &clock},
		{TotalBytes: 4096, PhysicalBytes: 4096, Readahead: -1, Clock: &clock},
		{TotalBytes: 4096, PhysicalBytes: 4096, WriteCluster: -2, Clock: &clock},
	}
	for i, cfg := range bad {
		cfg.Device = iosim.HDD()
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestThrashingCostsMoreThanFitting(t *testing.T) {
	fit, fitClock := newMem(t, 64, 64, 1)
	thrash, thrashClock := newMem(t, 64, 8, 1)
	for round := 0; round < 10; round++ {
		for p := int64(0); p < 64; p++ {
			_ = fit.Touch(p*DefaultPageSize, 1, true)
			_ = thrash.Touch(p*DefaultPageSize, 1, true)
		}
	}
	if fitClock.Elapsed() != 0 {
		t.Errorf("fitting working set must never hit the device, cost %v", fitClock.Elapsed())
	}
	if thrashClock.Elapsed() == 0 || thrash.Stats().MajorFaults == 0 {
		t.Error("thrashing must hit the device")
	}
}

func TestPagedProviderBitExactAndCharged(t *testing.T) {
	var clock iosim.Clock
	p, err := NewPagedProvider(8, 1024, 2*4096, iosim.HDD(), &clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVectors() != 8 || p.VectorLen() != 1024 {
		t.Fatal("geometry wrong")
	}
	v, err := p.Vector(3, true)
	if err != nil {
		t.Fatal(err)
	}
	v[100] = 42
	// Cycle all vectors with writes to force swap traffic.
	for round := 0; round < 2; round++ {
		for vi := 0; vi < 8; vi++ {
			if _, err := p.Vector(vi, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	back, err := p.Vector(3, false)
	if err != nil {
		t.Fatal(err)
	}
	if back[100] != 42 {
		t.Error("data must be bit-exact regardless of simulated eviction")
	}
	if clock.Elapsed() == 0 || p.Memory().Stats().MajorFaults == 0 {
		t.Error("paging costs must have been charged")
	}
	if _, err := p.Vector(8, false); err == nil {
		t.Error("out of range must fail")
	}
	if _, err := NewPagedProvider(0, 10, 4096, iosim.HDD(), &clock, 1); err == nil {
		t.Error("bad geometry must fail")
	}
}
