package vm

import (
	"fmt"

	"oocphylo/internal/iosim"
)

// PagedProvider adapts PagedMemory to the plf.VectorProvider contract:
// the "standard RAxML" storage layout (all vectors in one contiguous
// virtual allocation) running on a machine whose physical memory may be
// smaller than the allocation. Data lives in real RAM so likelihoods
// stay bit-exact; every access charges the simulated paging cost of
// touching the vector's pages.
type PagedProvider struct {
	vecs   [][]float64
	vecLen int
	mem    *PagedMemory
}

// NewPagedProvider allocates numVectors vectors of vecLen float64s and
// a paging simulation with the given physical-memory budget over their
// combined footprint.
func NewPagedProvider(numVectors, vecLen int, physicalBytes int64, dev iosim.Device, clock *iosim.Clock, readahead int) (*PagedProvider, error) {
	if numVectors <= 0 || vecLen <= 0 {
		return nil, fmt.Errorf("vm: invalid provider geometry %dx%d", numVectors, vecLen)
	}
	total := int64(numVectors) * int64(vecLen) * 8
	mem, err := New(Config{
		TotalBytes:    total,
		PhysicalBytes: physicalBytes,
		Device:        dev,
		Clock:         clock,
		Readahead:     readahead,
	})
	if err != nil {
		return nil, err
	}
	p := &PagedProvider{vecLen: vecLen, mem: mem, vecs: make([][]float64, numVectors)}
	backing := make([]float64, numVectors*vecLen)
	for i := range p.vecs {
		p.vecs[i], backing = backing[:vecLen:vecLen], backing[vecLen:]
	}
	return p, nil
}

// Vector implements plf.VectorProvider. Pins are meaningless under OS
// paging (the OS cannot be told what to keep) and are ignored; the
// write flag marks the touched pages dirty.
func (p *PagedProvider) Vector(vi int, write bool, pinned ...int) ([]float64, error) {
	if vi < 0 || vi >= len(p.vecs) {
		return nil, fmt.Errorf("vm: vector index %d out of range [0, %d)", vi, len(p.vecs))
	}
	off := int64(vi) * int64(p.vecLen) * 8
	if err := p.mem.Touch(off, int64(p.vecLen)*8, write); err != nil {
		return nil, err
	}
	return p.vecs[vi], nil
}

// NumVectors implements plf.VectorProvider.
func (p *PagedProvider) NumVectors() int { return len(p.vecs) }

// VectorLen implements plf.VectorProvider.
func (p *PagedProvider) VectorLen() int { return p.vecLen }

// Memory exposes the underlying simulation for stats inspection.
func (p *PagedProvider) Memory() *PagedMemory { return p.mem }
