// Package vm simulates operating-system demand paging over the
// ancestral-vector address space. It is the substitute for the paper's
// §4.3 baseline — standard RAxML running on a 2 GB machine with 36 GB
// of swap — which cannot be reproduced literally in CI. The simulator
// keeps the vector data itself in real RAM (so results stay bit-exact)
// while modelling the *cost* of a bounded physical memory: a page table
// over 4 KiB pages, an LRU frame pool, dirty-page write-back and
// configurable sequential readahead, all charged against the same
// iosim.Device the out-of-core manager uses. The design difference the
// paper measures — page-granular, partially random faulting versus
// whole-vector amortised swaps — is therefore priced identically on
// both sides.
package vm

import (
	"errors"
	"fmt"

	"oocphylo/internal/iosim"
)

// DefaultPageSize is the x86-64 base page size.
const DefaultPageSize = 4096

// DefaultReadahead is the number of pages loaded per swap-in fault.
// Swap readahead is much smaller than file readahead: Linux's default
// vm.page-cluster = 3 reads 2³ = 8 pages (32 KiB) per major fault —
// one of the two granularity gaps (with forced reads of pages about to
// be overwritten) that make OS paging lose to whole-vector out-of-core
// transfers in the paper's Figure 5.
const DefaultReadahead = 8

// DefaultWriteCluster is the number of swap-out writes batched under a
// single positioning latency (Linux's page-cluster swap write batching).
const DefaultWriteCluster = 32

// Stats counts simulated paging activity.
type Stats struct {
	// Touches is the number of page touches requested.
	Touches int64
	// MinorFaults counts first-touch zero-fill faults (frame allocation,
	// no device I/O — anonymous memory is not read from anywhere).
	MinorFaults int64
	// MajorFaults is the number of swap-in events (each may read several
	// pages due to readahead).
	MajorFaults int64
	// PagesRead and PagesWritten count page-granular device traffic.
	PagesRead, PagesWritten int64
}

// PagedMemory models a bounded physical memory in front of a swap
// device. Addresses are byte offsets into a flat space.
type PagedMemory struct {
	pageSize  int
	readahead int
	dev       iosim.Device
	clock     *iosim.Clock

	// Per-page state plus an intrusive LRU list over resident pages.
	resident []bool
	dirty    []bool
	// inSwap marks pages with a copy on the swap device (they were
	// written back at least once); only these cost a read to fault in.
	inSwap []bool
	prev   []int32
	next   []int32
	head   int32 // most recently used
	tail   int32 // least recently used
	free   int   // remaining frames

	// writeCluster batches swap-out positioning costs: one device
	// latency per writeCluster page write-backs (bandwidth is always
	// charged), modelling the OS's swap write clustering.
	writeCluster  int
	pendingWrites int

	stats Stats
}

// Config configures a PagedMemory.
type Config struct {
	// TotalBytes is the size of the pageable address space.
	TotalBytes int64
	// PhysicalBytes is the RAM budget; the frame pool holds
	// PhysicalBytes/PageSize pages.
	PhysicalBytes int64
	// PageSize defaults to DefaultPageSize.
	PageSize int
	// Readahead is the pages-per-fault window; defaults to
	// DefaultReadahead. Set to 1 to disable readahead.
	Readahead int
	// WriteCluster is the number of swap-out page writes sharing one
	// positioning latency; defaults to DefaultWriteCluster. Set to 1 to
	// charge a full seek per page write.
	WriteCluster int
	// Device is the swap device model.
	Device iosim.Device
	// Clock receives the I/O charges.
	Clock *iosim.Clock
}

// New validates cfg and builds the page table.
func New(cfg Config) (*PagedMemory, error) {
	if cfg.PageSize == 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.Readahead == 0 {
		cfg.Readahead = DefaultReadahead
	}
	if cfg.WriteCluster == 0 {
		cfg.WriteCluster = DefaultWriteCluster
	}
	if cfg.PageSize < 512 || cfg.Readahead < 1 || cfg.WriteCluster < 1 {
		return nil, fmt.Errorf("vm: invalid page size %d / readahead %d / write cluster %d",
			cfg.PageSize, cfg.Readahead, cfg.WriteCluster)
	}
	if cfg.TotalBytes <= 0 || cfg.PhysicalBytes <= 0 {
		return nil, fmt.Errorf("vm: invalid geometry: total %d, physical %d", cfg.TotalBytes, cfg.PhysicalBytes)
	}
	if cfg.Clock == nil {
		return nil, errors.New("vm: Clock is required")
	}
	nPages := int((cfg.TotalBytes + int64(cfg.PageSize) - 1) / int64(cfg.PageSize))
	frames := int(cfg.PhysicalBytes / int64(cfg.PageSize))
	if frames < 1 {
		return nil, errors.New("vm: physical memory smaller than one page")
	}
	if frames > nPages {
		frames = nPages
	}
	m := &PagedMemory{
		pageSize:     cfg.PageSize,
		readahead:    cfg.Readahead,
		writeCluster: cfg.WriteCluster,
		dev:          cfg.Device,
		clock:        cfg.Clock,
		resident:     make([]bool, nPages),
		dirty:        make([]bool, nPages),
		inSwap:       make([]bool, nPages),
		prev:         make([]int32, nPages),
		next:         make([]int32, nPages),
		head:         -1,
		tail:         -1,
		free:         frames,
	}
	return m, nil
}

// Frames returns the physical frame budget.
func (m *PagedMemory) Frames() int { return m.free + m.residentCount() }

func (m *PagedMemory) residentCount() int {
	// O(1) alternative would track a counter; Frames is only called by
	// tests and reports.
	c := 0
	for _, r := range m.resident {
		if r {
			c++
		}
	}
	return c
}

// Stats returns the counters.
func (m *PagedMemory) Stats() Stats { return m.stats }

// ResetStats zeroes the counters (page table state is kept).
func (m *PagedMemory) ResetStats() { m.stats = Stats{} }

// lruRemove unlinks page p from the LRU list.
func (m *PagedMemory) lruRemove(p int32) {
	if m.prev[p] >= 0 {
		m.next[m.prev[p]] = m.next[p]
	} else {
		m.head = m.next[p]
	}
	if m.next[p] >= 0 {
		m.prev[m.next[p]] = m.prev[p]
	} else {
		m.tail = m.prev[p]
	}
}

// lruPush makes page p the most recently used.
func (m *PagedMemory) lruPush(p int32) {
	m.prev[p] = -1
	m.next[p] = m.head
	if m.head >= 0 {
		m.prev[m.head] = p
	}
	m.head = p
	if m.tail < 0 {
		m.tail = p
	}
}

// evictOne drops the least recently used page, charging a write-back if
// it is dirty. Swap-out positioning latency is amortised over
// writeCluster consecutive write-backs (bandwidth is always charged).
func (m *PagedMemory) evictOne() {
	p := m.tail
	if p < 0 {
		return
	}
	m.lruRemove(p)
	m.resident[p] = false
	if m.dirty[p] {
		m.dirty[p] = false
		m.inSwap[p] = true
		m.stats.PagesWritten++
		m.pendingWrites++
		dev := m.dev
		if m.pendingWrites > 1 {
			dev = iosimZeroLatency(dev) // amortised into the cluster head
		}
		if m.pendingWrites >= m.writeCluster {
			m.pendingWrites = 0
		}
		m.clock.Charge(dev, int64(m.pageSize))
	}
	m.free++
}

// ensureResident faults page p in (with readahead over the contiguous
// swapped-out run) if needed. Pages never written back are zero-filled
// minor faults with no device traffic.
func (m *PagedMemory) ensureResident(p int32) {
	if m.resident[p] {
		m.lruRemove(p)
		m.lruPush(p)
		return
	}
	if !m.inSwap[p] {
		// Anonymous first touch: allocate a zeroed frame.
		m.stats.MinorFaults++
		if m.free == 0 {
			m.evictOne()
		}
		m.resident[p] = true
		m.dirty[p] = false
		m.free--
		m.lruPush(p)
		return
	}
	// Major fault: swap in p plus up to readahead-1 following swapped
	// pages in one device operation.
	m.stats.MajorFaults++
	loaded := int64(0)
	last := int(p) + m.readahead
	if last > len(m.resident) {
		last = len(m.resident)
	}
	for q := int(p); q < last; q++ {
		if q > int(p) && !m.inSwap[q] {
			break // readahead window ends at the swapped-out run
		}
		if m.resident[q] {
			continue
		}
		if m.free == 0 {
			m.evictOne()
		}
		m.resident[q] = true
		m.dirty[q] = false
		m.free--
		m.lruPush(int32(q))
		loaded++
		m.stats.PagesRead++
	}
	// One positioning latency, size-proportional transfer.
	m.clock.Charge(m.dev, loaded*int64(m.pageSize))
}

// iosimZeroLatency returns dev with its positioning latency removed,
// for charges amortised into an already-paid positioning.
func iosimZeroLatency(d iosim.Device) iosim.Device {
	d.Latency = 0
	return d
}

// Touch simulates an access to [off, off+length) bytes. write marks the
// pages dirty.
func (m *PagedMemory) Touch(off, length int64, write bool) error {
	if off < 0 || length < 0 || (off+length+int64(m.pageSize)-1)/int64(m.pageSize) > int64(len(m.resident)) {
		return fmt.Errorf("vm: touch [%d, %d) outside address space", off, off+length)
	}
	if length == 0 {
		return nil
	}
	first := off / int64(m.pageSize)
	last := (off + length - 1) / int64(m.pageSize)
	for p := first; p <= last; p++ {
		m.stats.Touches++
		m.ensureResident(int32(p))
		if write {
			m.dirty[p] = true
		}
	}
	return nil
}
