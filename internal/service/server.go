package service

// Server — the multi-tenant daemon around the PLF engine. One process
// hosts many named sessions; the server's job is governance: admitting
// sessions whose memory floors fit under the global budget, squeezing
// the out-of-core slot pools proportionally when tenants pile up,
// parking idle sessions to disk (exact-resume checkpoints) and reviving
// them on the next request, and exposing the whole ledger on the /debug
// endpoint the observability PR built.
//
// The memory model, in the paper's terms: each session is one PLF
// instance with n ancestral vectors of w bytes. An in-core session
// pins n·w bytes for as long as it is active — its floor IS its need.
// An out-of-core session needs only m ≥ 3 slots live (the newview
// recurrence's working set), so its floor is 3·w and everything above
// that is elastic. The governor hands each active OOC session a grant
// share = quota·avail/Σquota of whatever budget the in-core tenants
// left over, enforced through ooc.Manager.Resize at engine safe
// points — the same live-resize machinery PR 6 added, now driven by
// tenancy instead of a heap watchdog (the watchdog still runs per
// session, arbitrating the global SOFT heap budget from inside
// whichever tenant is computing).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"oocphylo/internal/checkpoint"
	"oocphylo/internal/obs"
	"oocphylo/internal/ooc"
)

// ServerConfig sizes the daemon.
type ServerConfig struct {
	// DataDir holds per-session files: <name>.aln, <name>.ckpt,
	// <name>.vec(+.sum). Parked sessions found here at startup are
	// adopted and revived lazily on their next request.
	DataDir string
	// MemBudget is the global ancestral-vector budget in bytes across
	// ALL active sessions (0 = unlimited). Admission rejects sessions
	// whose floor does not fit; the governor squeezes elastic OOC pools
	// to keep the sum of grants under it.
	MemBudget int64
	// Batch configures every session's coalescing batcher.
	Batch BatcherConfig
	// IdleTimeout parks sessions with no request for this long
	// (0 = never). Parking frees their RAM; the next request revives
	// them from the checkpoint.
	IdleTimeout time.Duration
	// StoreURL, when set (remote://host:port), puts every out-of-core
	// session's vectors on that object store behind a local write-back
	// cache in DataDir (<name>.cache/). Each session uses the object
	// <name>.vec; checksum sidecars stay local, so park manifests
	// verify revived remote vectors exactly as they do local files.
	StoreURL string
	// CacheBytes bounds each session's local cache tier (0 = size the
	// cache to hold every vector).
	CacheBytes int64
	// RemoteLanes is the per-session parallel remote fetch fan-out
	// (0 = the tiered store's default).
	RemoteLanes int
	// RemoteDeadline bounds each remote store request attempt; retries
	// get a fresh deadline (0 = none). Only meaningful with StoreURL.
	RemoteDeadline time.Duration
	// HedgeAfter launches a second identical remote read when the first
	// is still in flight after this long (0 = no hedging).
	HedgeAfter time.Duration
	// SpillDir overrides where each session's write-back spill journal
	// lives (default: inside the session's cache directory). Point it at
	// a different disk to keep outage spill off the cache volume.
	SpillDir string
	// RequestTimeout bounds one /v1 request end-to-end; expiry maps to
	// 503 + Retry-After (0 = no deadline).
	RequestTimeout time.Duration
	// RetryAfter is the hint written on 503 responses (default 1s).
	RetryAfter time.Duration
	// ShedDepth is the spill-journal high-water mark: while a session's
	// remote tier is degraded (circuit open) AND its journal holds at
	// least this many vectors, new evaluates for it are shed with 503 +
	// Retry-After instead of piling more dirty state onto local disk.
	// 0 = half the session's vector count.
	ShedDepth int
}

// admissionError is a quota rejection — mapped to 503, because the
// condition clears when other tenants park or shrink.
type admissionError struct{ msg string }

func (e *admissionError) Error() string { return e.msg }

// IsAdmissionError reports whether err is a governor rejection.
func IsAdmissionError(err error) bool {
	_, ok := err.(*admissionError)
	return ok
}

// Server hosts the sessions and the governor.
type Server struct {
	cfg   ServerConfig
	reg   *obs.Registry
	tr    *obs.Tracer
	spans *obs.SpanCollector
	slo   *obs.SLOEvaluator

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool

	// global admission/throughput ledger (the /debug svc.* section)
	mxAdmitted, mxRejected   *obs.Counter
	mxParks, mxRevives       *obs.Counter
	mxResizes, mxBatches     *obs.Counter
	mxEvals                  *obs.Counter
	mxHTTPReqs, mxHTTPErrs   *obs.Counter
	mxSessions, mxActive     *obs.Gauge
	mxGranted                *obs.Gauge
	mxBatchSize, mxBatchExec *obs.Histogram
	mxReqSeconds             *obs.Histogram

	reaperQuit chan struct{}
	reaperDone chan struct{}
}

// NewServer builds the daemon: creates DataDir, wires the registry and
// tracer, and adopts any parked sessions a previous daemon left there.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	if cfg.StoreURL != "" {
		// Fail at startup, not at the first session create: the
		// endpoint must yield a valid object URL for any session name.
		if _, err := ooc.ParseRemoteURL(sessionObjectURL(cfg.StoreURL, "probe")); err != nil {
			return nil, fmt.Errorf("service: invalid store URL %q (want remote://host:port or remote://host:port/namespace): %w", cfg.StoreURL, err)
		}
	}
	cfg.Batch.fill()
	s := &Server{
		cfg:      cfg,
		reg:      obs.NewRegistry(),
		tr:       obs.NewTracer(1 << 16),
		spans:    obs.NewSpanCollector(256),
		sessions: make(map[string]*Session),
	}
	s.mxAdmitted = s.reg.Counter("svc.admitted")
	s.mxRejected = s.reg.Counter("svc.rejected")
	s.mxParks = s.reg.Counter("svc.parks")
	s.mxRevives = s.reg.Counter("svc.revives")
	s.mxResizes = s.reg.Counter("svc.resizes")
	s.mxBatches = s.reg.Counter("svc.batches")
	s.mxEvals = s.reg.Counter("svc.evals")
	s.mxSessions = s.reg.Gauge("svc.sessions")
	s.mxActive = s.reg.Gauge("svc.active")
	s.mxGranted = s.reg.Gauge("svc.granted_bytes")
	s.mxBatchSize = s.reg.Histogram("svc.batch.size", []float64{1, 2, 4, 8, 16, 32, 64})
	s.mxBatchExec = s.reg.Histogram("svc.batch.exec_seconds", nil)
	s.mxHTTPReqs = s.reg.Counter("svc.http.requests")
	s.mxHTTPErrs = s.reg.Counter("svc.http.errors")
	s.mxReqSeconds = s.reg.Histogram("svc.request_seconds",
		[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5})
	s.reg.SetInfo("svc.mem_budget", fmt.Sprintf("%d", cfg.MemBudget))
	s.reg.AddPublisher(s.publish)
	obs.RegisterTracerMetrics(s.reg, s.tr, s.spans)

	// The daemon's SLOs: request availability (non-5xx ratio) and
	// latency (requests answered inside 500 ms — a bucket bound of the
	// request histogram, so the SLI is exact). Publish comes after every
	// Add, per the evaluator's pre-resolution contract.
	s.slo = obs.NewSLOEvaluator(nil)
	s.slo.Add(obs.SLO{Name: "availability", Objective: 0.999,
		SLI: obs.ErrorSLI(s.mxHTTPErrs, s.mxHTTPReqs)})
	s.slo.Add(obs.SLO{Name: "latency", Objective: 0.99,
		SLI: obs.LatencySLI(s.mxReqSeconds, 0.5)})
	s.slo.Publish(s.reg)

	if err := s.adoptParked(); err != nil {
		return nil, err
	}
	s.reaperQuit = make(chan struct{})
	s.reaperDone = make(chan struct{})
	go s.reaper()
	return s, nil
}

// Registry exposes the server's metrics registry (tests and the CLI's
// shutdown report read it).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Spans exposes the server's span collector (tests and the traced CI
// smoke inspect recorded traces through it).
func (s *Server) Spans() *obs.SpanCollector { return s.spans }

// SLO exposes the burn-rate evaluator behind /debug/slo.
func (s *Server) SLO() *obs.SLOEvaluator { return s.slo }

// publish mirrors the live tenancy picture into the gauges.
func (s *Server) publish() {
	s.mu.Lock()
	list := make([]*Session, 0, len(s.sessions))
	for _, ses := range s.sessions {
		list = append(list, ses)
	}
	s.mu.Unlock()
	var active int64
	var granted int64
	for _, ses := range list {
		a, _, _, _, _, _ := ses.memShape()
		if a {
			active++
			ses.mu.Lock()
			granted += ses.grant
			ses.mu.Unlock()
		}
	}
	s.mxSessions.Set(int64(len(list)))
	s.mxActive.Set(active)
	s.mxGranted.Set(granted)
}

// adoptParked scans DataDir for checkpoints written by a previous
// daemon and registers each as a parked session. Nothing is loaded into
// RAM here — the first request pays the revive.
func (s *Server) adoptParked() error {
	ents, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".ckpt") {
			continue
		}
		path := filepath.Join(s.cfg.DataDir, ent.Name())
		ck, err := checkpoint.Load(path)
		if err != nil {
			continue // foreign or torn file: not ours to adopt
		}
		cfgJSON, ok := ck.Meta["service.config"]
		if !ok {
			continue // a CLI checkpoint, not a service session
		}
		var cfg SessionConfig
		if err := json.Unmarshal([]byte(cfgJSON), &cfg); err != nil {
			continue
		}
		if !validName(cfg.Name) || cfg.Name+".ckpt" != ent.Name() {
			continue
		}
		s.sessions[cfg.Name] = newSession(s, cfg)
	}
	return nil
}

// ---------------------------------------------------------------------
// Governance.

// shares computes the grant for every active session under MemBudget:
// in-core sessions take their full need off the top (their floor IS
// their need); OOC sessions split what is left in proportion to their
// quotas, clamped below by the MinSlots floor. Callers hold no locks.
func (s *Server) shares(all []*Session) map[*Session]int64 {
	grants := make(map[*Session]int64, len(all))
	if s.cfg.MemBudget <= 0 {
		for _, ses := range all {
			_, _, quota, need, _, _ := ses.memShape()
			if quota > need {
				quota = need
			}
			grants[ses] = quota
		}
		return grants
	}
	avail := s.cfg.MemBudget
	var oocs []*Session
	var sumQ int64
	for _, ses := range all {
		active, outOfCore, quota, need, _, _ := ses.memShape()
		if !active {
			continue
		}
		if !outOfCore {
			grants[ses] = need
			avail -= need
			continue
		}
		oocs = append(oocs, ses)
		sumQ += quota
	}
	if avail < 0 {
		avail = 0
	}
	for _, ses := range oocs {
		_, _, quota, need, vecBytes, _ := ses.memShape()
		grant := quota
		if sumQ > avail {
			grant = quota * avail / sumQ // proportional squeeze
		}
		floor := int64(ooc.MinSlots) * vecBytes
		if grant < floor {
			grant = floor
		}
		if grant > need {
			grant = need
		}
		grants[ses] = grant
	}
	return grants
}

// admit is the admission check for a session about to activate (create
// or revive): its FLOOR must fit beside the floors of every currently
// active session. Returns the initial grant. Called from the
// candidate's loop goroutine.
func (s *Server) admit(cand *Session, outOfCore bool, quota, vecBytes int64) (int64, error) {
	if s.cfg.MemBudget <= 0 {
		s.mxAdmitted.Inc()
		return quota, nil
	}
	floor := quota // in-core: all or nothing
	if outOfCore {
		floor = int64(ooc.MinSlots) * vecBytes
	}
	s.mu.Lock()
	others := make([]*Session, 0, len(s.sessions))
	for _, ses := range s.sessions {
		if ses != cand {
			others = append(others, ses)
		}
	}
	s.mu.Unlock()
	var used int64
	for _, ses := range others {
		active, oc, _, need, vb, _ := ses.memShape()
		if !active {
			continue
		}
		if oc {
			used += int64(ooc.MinSlots) * vb
		} else {
			used += need
		}
	}
	if used+floor > s.cfg.MemBudget {
		s.mxRejected.Inc()
		return 0, &admissionError{fmt.Sprintf(
			"service: memory budget exhausted: floor %d B + %d B in active floors > budget %d B (park or delete a session)",
			floor, used, s.cfg.MemBudget)}
	}
	s.mxAdmitted.Inc()
	// Initial grant: the candidate's proportional share given everyone
	// active. The squeeze of the OTHERS happens in the rebalance the
	// caller triggers once it is live.
	grants := s.shares(append(others, cand))
	if g, ok := grants[cand]; ok && g > 0 {
		return g, nil
	}
	// cand not active yet in memShape terms: compute its share directly.
	var avail, sumQ int64 = s.cfg.MemBudget, quota
	for ses, g := range grants {
		a, oc, q, _, _, _ := ses.memShape()
		if !a {
			continue
		}
		if oc {
			sumQ += q
		} else {
			avail -= g
		}
	}
	if avail < 0 {
		avail = 0
	}
	grant := quota
	if outOfCore && sumQ > avail {
		grant = quota * avail / sumQ
		if grant < floor {
			grant = floor
		}
	}
	return grant, nil
}

// rebalance recomputes every active session's grant and dispatches the
// resizes. Asynchronous by design: it is called from session loop jobs
// (park, revive), and resizeTo goes through the target session's loop —
// a synchronous call from loop A to loop A would deadlock.
func (s *Server) rebalance() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	all := make([]*Session, 0, len(s.sessions))
	for _, ses := range s.sessions {
		all = append(all, ses)
	}
	s.mu.Unlock()
	grants := s.shares(all)
	for ses, grant := range grants {
		active, outOfCore, _, _, _, _ := ses.memShape()
		if !active || !outOfCore {
			continue
		}
		go ses.resizeTo(grant)
	}
}

func (s *Server) notePark()   { s.mxParks.Inc() }
func (s *Server) noteRevive() { s.mxRevives.Inc() }
func (s *Server) noteResize() { s.mxResizes.Inc() }

func (s *Server) noteBatch(size int, start time.Time, execMicros int64) {
	s.mxBatches.Inc()
	s.mxEvals.Add(int64(size))
	s.mxBatchSize.Observe(float64(size))
	s.mxBatchExec.Observe(float64(execMicros) / 1e6)
}

// reaper parks sessions idle past IdleTimeout.
func (s *Server) reaper() {
	defer close(s.reaperDone)
	if s.cfg.IdleTimeout <= 0 {
		<-s.reaperQuit
		return
	}
	tick := time.NewTicker(s.cfg.IdleTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			cutoff := time.Now().Add(-s.cfg.IdleTimeout)
			s.mu.Lock()
			var idle []*Session
			for _, ses := range s.sessions {
				ses.mu.Lock()
				if ses.state == stateActive && ses.lastUsed.Before(cutoff) {
					idle = append(idle, ses)
				}
				ses.mu.Unlock()
			}
			s.mu.Unlock()
			for _, ses := range idle {
				_ = ses.do(ses.park)
			}
		case <-s.reaperQuit:
			return
		}
	}
}

// ---------------------------------------------------------------------
// Session registry operations.

// CreateSession validates, registers and builds a session.
func (s *Server) CreateSession(cfg SessionConfig) (*Session, error) {
	cfg.fill()
	if !validName(cfg.Name) {
		return nil, fmt.Errorf("service: invalid session name %q (letters, digits, '.', '_', '-'; max 64)", cfg.Name)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if _, dup := s.sessions[cfg.Name]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: session %q already exists", cfg.Name)
	}
	ses := newSession(s, cfg)
	s.sessions[cfg.Name] = ses
	s.mu.Unlock()

	if err := ses.do(ses.build); err != nil {
		s.mu.Lock()
		delete(s.sessions, cfg.Name)
		s.mu.Unlock()
		ses.close(true)
		return nil, err
	}
	s.rebalance()
	return ses, nil
}

// Session looks a session up by name.
func (s *Server) Session(name string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ses, ok := s.sessions[name]
	return ses, ok
}

// Sessions snapshots every session's info document, sorted by name.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	list := make([]*Session, 0, len(s.sessions))
	for _, ses := range s.sessions {
		list = append(list, ses)
	}
	s.mu.Unlock()
	infos := make([]SessionInfo, 0, len(list))
	for _, ses := range list {
		infos = append(infos, ses.infoSnapshot())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// DeleteSession tears a session down and removes its files.
func (s *Server) DeleteSession(name string) error {
	s.mu.Lock()
	ses, ok := s.sessions[name]
	delete(s.sessions, name)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("service: no session %q", name)
	}
	ses.batcher.Close()
	ses.close(true)
	s.rebalance()
	return nil
}

// ParkSession checkpoints a session and frees its RAM on demand.
func (s *Server) ParkSession(name string) error {
	ses, ok := s.Session(name)
	if !ok {
		return fmt.Errorf("service: no session %q", name)
	}
	return ses.do(ses.park)
}

// Close parks every session (so all of them are resumable from disk)
// and stops the daemon. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	list := make([]*Session, 0, len(s.sessions))
	for _, ses := range s.sessions {
		list = append(list, ses)
	}
	s.mu.Unlock()
	close(s.reaperQuit)
	<-s.reaperDone
	var firstErr error
	for _, ses := range list {
		ses.batcher.Close()
		if err := ses.do(ses.park); err != nil && firstErr == nil {
			firstErr = err
		}
		ses.close(false)
	}
	return firstErr
}

// ---------------------------------------------------------------------
// HTTP surface.

// Handler mounts the service routes onto the observability mux, so one
// listener serves /v1/* and /debug/*. Every /v1 route runs under the
// traced middleware: always metered (the SLO inputs), and span-recorded
// when the request carries a W3C traceparent header.
func (s *Server) Handler() http.Handler {
	mux := obs.NewMux(s.reg, s.tr, obs.WithSpans(s.spans), obs.WithSLO(s.slo))
	// /healthz is pure liveness: the process is up and serving. /readyz
	// additionally asks whether the daemon can serve at full fidelity —
	// a session whose remote tier is circuit-open still ANSWERS
	// (degraded mode recomputes instead of fetching, the journal absorbs
	// write-backs), but a load balancer should prefer a replica whose
	// remote tier is healthy.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	v1 := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.traced(pattern, h))
	}
	v1("POST /v1/sessions", s.handleCreate)
	v1("GET /v1/sessions", s.handleList)
	v1("GET /v1/sessions/{name}", s.handleInfo)
	v1("DELETE /v1/sessions/{name}", s.handleDelete)
	v1("POST /v1/sessions/{name}/evaluate", s.handleEvaluate)
	v1("POST /v1/sessions/{name}/newview", s.handleNewview)
	v1("POST /v1/sessions/{name}/optimize", s.handleOptimize)
	v1("POST /v1/sessions/{name}/park", s.handlePark)
	v1("GET /v1/sessions/{name}/tree", s.handleTree)
	return mux
}

// traced wraps one /v1 route. Every request lands in the svc.http.*
// counters and the request-latency histogram — the SLO inputs — and a
// request carrying a traceparent header additionally gets a server-side
// root span, its trace id echoed in the X-OOC-Trace response header,
// under which the handler chain (batcher, engine, manager, tiered
// store, remote client) parents everything it records. An untraced
// request pays one header lookup.
func (s *Server) traced(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		var sp *obs.Span
		if tp := r.Header.Get("traceparent"); tp != "" {
			sp = s.spans.StartRemoteChild("http "+name, tp)
			sp.SetAttrStr("path", r.URL.Path)
			w.Header().Set("X-OOC-Trace", sp.TraceID().String())
			r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.mxHTTPReqs.Inc()
		if sw.status >= 500 {
			s.mxHTTPErrs.Inc()
		}
		s.mxReqSeconds.Observe(time.Since(start).Seconds())
		if sp != nil {
			sp.SetAttr("status", int64(sw.status))
			sp.End()
		}
	}
}

// statusWriter captures the response status for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds renders the configured 503 hint (minimum 1s).
func (s *Server) retryAfterSeconds() string {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeErr maps service errors onto HTTP statuses: admission → 503
// (retryable once a tenant parks), remote-tier failures — circuit
// open, transient I/O, a request deadline that expired while the tier
// was struggling — → 503 + Retry-After (the condition clears when the
// breaker recloses), closed → 409, the rest → 400.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case IsAdmissionError(err), ooc.IsCircuitOpen(err), ooc.IsTransient(err),
		errors.Is(err, context.DeadlineExceeded):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", s.retryAfterSeconds())
	case err == ErrSessionClosed:
		status = http.StatusConflict
	}
	writeJSON(w, status, errorReply{Error: err.Error()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg SessionConfig
	if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
		s.writeErr(w, fmt.Errorf("service: bad session config: %w", err))
		return
	}
	ses, err := s.CreateSession(cfg)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, ses.infoSnapshot())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Sessions())
}

func (s *Server) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	name := r.PathValue("name")
	ses, ok := s.Session(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorReply{Error: fmt.Sprintf("no session %q", name)})
		return nil, false
	}
	return ses, true
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if ses, ok := s.session(w, r); ok {
		writeJSON(w, http.StatusOK, ses.infoSnapshot())
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.DeleteSession(r.PathValue("name")); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	ses, ok := s.session(w, r)
	if !ok {
		return
	}
	var spec EvalSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		s.writeErr(w, fmt.Errorf("service: bad evaluate spec: %w", err))
		return
	}
	if shed, depth := s.shouldShed(ses); shed {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeJSON(w, http.StatusServiceUnavailable, errorReply{Error: fmt.Sprintf(
			"service: session %q shedding load: remote tier degraded with %d vectors spilled (retry after breaker recovery)",
			ses.name, depth)})
		return
	}
	rep, err := ses.EvaluateCtx(r.Context(), spec, obs.SpanFromContext(r.Context()))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if rep.Cost != nil {
		w.Header().Set("X-OOC-Cost", rep.Cost.Header())
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleNewview(w http.ResponseWriter, r *http.Request) {
	ses, ok := s.session(w, r)
	if !ok {
		return
	}
	var spec EvalSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		s.writeErr(w, fmt.Errorf("service: bad newview spec: %w", err))
		return
	}
	rep, err := ses.Newview(spec.Edge)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	ses, ok := s.session(w, r)
	if !ok {
		return
	}
	var spec OptimizeSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		s.writeErr(w, fmt.Errorf("service: bad optimize spec: %w", err))
		return
	}
	rep, err := ses.Optimize(spec)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handlePark(w http.ResponseWriter, r *http.Request) {
	ses, ok := s.session(w, r)
	if !ok {
		return
	}
	if err := ses.do(ses.park); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ses.infoSnapshot())
}

func (s *Server) handleTree(w http.ResponseWriter, r *http.Request) {
	ses, ok := s.session(w, r)
	if !ok {
		return
	}
	nwk, err := ses.Tree()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"session": ses.name, "newick": nwk})
}

// ---------------------------------------------------------------------
// Readiness and load shedding.

// readyReply is the /readyz document.
type readyReply struct {
	Ready bool `json:"ready"`
	// Degraded lists sessions whose remote tier is circuit-open. They
	// still answer (cache + recompute + journal), at reduced fidelity.
	Degraded []string `json:"degraded,omitempty"`
}

// handleReady answers /readyz: 200 while every session's remote tier is
// healthy (or local), 503 + Retry-After while any is degraded. Each
// poll also nudges the degraded tiers with a bounded probe — a fully
// degraded workload goes local and would otherwise starve the breaker
// of the traffic it needs to half-open and detect recovery.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]*Session, 0, len(s.sessions))
	for _, ses := range s.sessions {
		list = append(list, ses)
	}
	s.mu.Unlock()
	var rep readyReply
	for _, ses := range list {
		hasTier, degraded, _ := ses.tierHealth()
		if !hasTier || !degraded {
			continue
		}
		rep.Degraded = append(rep.Degraded, ses.name)
		if tier := ses.tierStore(); tier != nil {
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				_ = tier.ProbeRemote(ctx)
			}()
		}
	}
	sort.Strings(rep.Degraded)
	rep.Ready = len(rep.Degraded) == 0
	if !rep.Ready {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeJSON(w, http.StatusServiceUnavailable, rep)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// shouldShed decides whether an evaluate for ses must be refused:
// only while the session's remote tier is degraded AND its spill
// journal is past the high-water mark — degraded alone is fine (that
// is what recompute and the journal are for); deep spill on top of an
// outage means local disk is absorbing unbounded dirty state.
func (s *Server) shouldShed(ses *Session) (bool, int64) {
	hasTier, degraded, depth := ses.tierHealth()
	if !hasTier || !degraded {
		return false, 0
	}
	hw := int64(s.cfg.ShedDepth)
	if hw <= 0 {
		_, _, _, _, _, n := ses.memShape()
		hw = int64(n) / 2
		if hw < 1 {
			hw = 1
		}
	}
	return depth >= hw, depth
}
