package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"oocphylo/internal/obs"
	"oocphylo/internal/ooc/remote"
)

// TestServiceTracedEvaluateEndToEnd is the tentpole's acceptance test:
// one traced client evaluate against a daemon backed by a starved tiered
// cache over a loopback object store must yield a single trace spanning
// HTTP handler → engine pass → PLF kernels → OOC manager → tiered cache
// → remote object HTTP, with a cost ledger that agrees with the store
// counters — while untraced requests on the same wire carry no trace
// fields at all and answer bit-identically.
func TestServiceTracedEvaluateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	alnPath, vecBytes, need := writeTestAlignment(t, dir, 24, 300, 23)

	// The object server keeps its own collector (it is a separate
	// process in production); trace continuity across it is purely via
	// the traceparent header on each GET/PUT.
	objSpans := obs.NewSpanCollector(64)
	rsrv, err := remote.NewServer(remote.ServerConfig{Spans: objSpans})
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()

	srv := newTestServer(t, ServerConfig{
		DataDir:    dir,
		StoreURL:   "remote://" + rsrv.Addr(),
		CacheBytes: 4 * vecBytes, // four cached vectors: constant remote churn
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	c := NewClient(hs.URL)
	cfg := baseSession("tr", alnPath)
	cfg.MemLimit = need / 2
	if _, err := c.CreateSession(cfg); err != nil {
		t.Fatal(err)
	}

	// Untraced baseline: the reply must carry no trace fields — the
	// whole span path is off.
	base, err := c.Evaluate("tr", EvalSpec{Edge: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.TraceID != "" || base.Cost != nil {
		t.Fatalf("untraced reply carries trace fields: %+v", base)
	}

	// Traced evaluates across several edges: every reply gets a trace id
	// and a per-request cost ledger.
	c.SetTrace(true)
	var total obs.Cost
	var traced []EvalReply
	for _, edge := range []int{0, 4, 8, 12, 16, 20, 2, 6, 10, 1} {
		rep, err := c.Evaluate("tr", EvalSpec{Edge: edge})
		if err != nil {
			t.Fatalf("traced evaluate edge %d: %v", edge, err)
		}
		if rep.TraceID == "" || rep.Cost == nil {
			t.Fatalf("traced reply missing trace fields: %+v", rep)
		}
		if edge == 1 && rep.LnLBits != base.LnLBits {
			t.Errorf("tracing changed the likelihood: %s != %s", rep.LnLBits, base.LnLBits)
		}
		total = total.Add(*rep.Cost)
		traced = append(traced, rep)
	}
	if total.Newviews == 0 || total.ExecMicros == 0 {
		t.Fatalf("cost totals show no engine work: %+v", total)
	}
	if total.VectorsFaulted == 0 {
		t.Errorf("no faults attributed despite the out-of-core quota: %+v", total)
	}
	if total.RemoteGets == 0 || total.BytesRemote == 0 {
		t.Errorf("no remote traffic attributed despite the starved cache: %+v", total)
	}

	// Attribution never exceeds what the store counters saw in total
	// (the counters also cover the untraced baseline and warmup).
	ses, ok := srv.Session("tr")
	if !ok {
		t.Fatal("session lost")
	}
	ms := ses.mgr.Stats()
	ts := ses.tier.Stats()
	if total.VectorsFaulted > ms.Misses {
		t.Errorf("attributed faults %d exceed manager misses %d", total.VectorsFaulted, ms.Misses)
	}
	if total.RemoteGets > ts.RemoteReads || total.BytesRemote > ts.BytesFetched {
		t.Errorf("attributed remote traffic (%d gets, %d B) exceeds tier totals (%d, %d)",
			total.RemoteGets, total.BytesRemote, ts.RemoteReads, ts.BytesFetched)
	}

	// Pick a request that touched the remote tier and walk its trace:
	// every layer must appear, and the trace ledger must equal the
	// reply's cost exactly (one request == one trace).
	var rich EvalReply
	for _, r := range traced {
		if r.Cost.RemoteGets > 0 {
			rich = r
			break
		}
	}
	if rich.TraceID == "" {
		t.Fatal("no traced request touched the remote tier")
	}
	view, ok := srv.Spans().Trace(rich.TraceID)
	if !ok {
		t.Fatalf("trace %s not held by the daemon collector", rich.TraceID)
	}
	if view.Cost != *rich.Cost {
		t.Errorf("trace ledger %+v != reply cost %+v", view.Cost, *rich.Cost)
	}
	names := map[string]bool{}
	for _, s := range view.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{
		"http POST /v1/sessions/{name}/evaluate",
		"svc.engine_pass",
		"svc.batch_wait",
		"plf.evaluate",
		"ooc.fault_in",
		"tier.remote_get",
	} {
		if !names[want] {
			t.Errorf("trace %s missing span %q (has %v)", rich.TraceID, want, names)
		}
	}
	// The last hop: the object server recorded spans under the SAME
	// trace id, carried over the wire by the traceparent header.
	objView, ok := objSpans.Trace(rich.TraceID)
	if !ok {
		t.Fatalf("object server holds no spans for trace %s", rich.TraceID)
	}
	var sawGet bool
	for _, s := range objView.Spans {
		if s.Name == "obj.get" {
			sawGet = true
		}
	}
	if !sawGet {
		t.Errorf("object server trace %s has no obj.get span: %+v", rich.TraceID, objView.Spans)
	}
}

// TestServiceTraceHeaders pins the wire format: a raw request with a
// minted traceparent gets X-OOC-Trace echoing the trace id and an
// X-OOC-Cost header that parses back to exactly the JSON reply's cost.
func TestServiceTraceHeaders(t *testing.T) {
	dir := t.TempDir()
	alnPath, _, _ := writeTestAlignment(t, dir, 10, 200, 29)
	srv := newTestServer(t, ServerConfig{DataDir: dir})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)
	if _, err := c.CreateSession(baseSession("hdr", alnPath)); err != nil {
		t.Fatal(err)
	}

	header, traceID := obs.NewTraceparent()
	body, _ := json.Marshal(EvalSpec{Edge: 0})
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/sessions/hdr/evaluate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", header)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-OOC-Trace"); got != traceID {
		t.Errorf("X-OOC-Trace %q, want %q", got, traceID)
	}
	var rep EvalReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.TraceID != traceID {
		t.Errorf("reply trace id %q, want %q", rep.TraceID, traceID)
	}
	if rep.Cost == nil {
		t.Fatal("traced reply has no cost")
	}
	hdrCost, ok := obs.ParseCostHeader(resp.Header.Get("X-OOC-Cost"))
	if !ok {
		t.Fatalf("X-OOC-Cost %q does not parse", resp.Header.Get("X-OOC-Cost"))
	}
	if hdrCost != *rep.Cost {
		t.Errorf("X-OOC-Cost %+v != reply cost %+v", hdrCost, *rep.Cost)
	}
}
