package service

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recordingExec fills every job and records the size of each batch it
// was handed.
type recordingExec struct {
	mu    sync.Mutex
	sizes []int
}

func (r *recordingExec) exec(batch []*evalJob) {
	r.mu.Lock()
	r.sizes = append(r.sizes, len(batch))
	r.mu.Unlock()
	for _, j := range batch {
		j.res = EvalReply{Edge: j.spec.Edge, LnL: -1, LnLBits: FormatLnLBits(-1), BatchSize: len(batch)}
	}
}

func (r *recordingExec) batchSizes() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.sizes...)
}

// TestBatcherCoalesces pins the size trigger: MaxBatch concurrent
// submissions ride in one flushed batch (the generous MaxWait means the
// collect window cannot expire first).
func TestBatcherCoalesces(t *testing.T) {
	const n = 8
	rec := &recordingExec{}
	b := newBatcher(BatcherConfig{MaxBatch: n, MaxWait: time.Second}, rec.exec)
	defer b.Close()

	var wg sync.WaitGroup
	var coalesced atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(edge int) {
			defer wg.Done()
			rep, err := b.Submit(EvalSpec{Edge: edge})
			if err != nil {
				t.Errorf("Submit(%d): %v", edge, err)
				return
			}
			if rep.Edge != edge {
				t.Errorf("reply edge %d, want %d", rep.Edge, edge)
			}
			if rep.BatchSize > 1 {
				coalesced.Add(1)
			}
		}(i)
	}
	wg.Wait()

	sizes := rec.batchSizes()
	total := 0
	for _, sz := range sizes {
		total += sz
	}
	if total != n {
		t.Fatalf("executed %d jobs across batches %v, want %d", total, sizes, n)
	}
	// All n submissions were in flight before any could return (Submit
	// blocks), so the loop must have packed them into far fewer than n
	// batches; the common case is exactly one.
	if len(sizes) == n {
		t.Errorf("no coalescing happened: %d batches for %d concurrent submissions", len(sizes), n)
	}
	if coalesced.Load() == 0 {
		t.Error("no reply carried BatchSize > 1")
	}
}

// TestBatcherMaxWaitFlush pins the deadline trigger: a lone request is
// flushed once MaxWait expires even though the batch is nowhere near
// full.
func TestBatcherMaxWaitFlush(t *testing.T) {
	rec := &recordingExec{}
	b := newBatcher(BatcherConfig{MaxBatch: 1024, MaxWait: 5 * time.Millisecond}, rec.exec)
	defer b.Close()

	start := time.Now()
	rep, err := b.Submit(EvalSpec{Edge: 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("lone submission took %v; the deadline flush did not fire", elapsed)
	}
	if rep.BatchSize != 1 {
		t.Errorf("BatchSize = %d, want 1", rep.BatchSize)
	}
	if got := rec.batchSizes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("batch sizes %v, want [1]", got)
	}
}

// TestBatcherSizeFlushSplits pins that the size trigger caps batches:
// more concurrent submissions than MaxBatch split across flushes, and
// every one is answered.
func TestBatcherSizeFlushSplits(t *testing.T) {
	rec := &recordingExec{}
	b := newBatcher(BatcherConfig{MaxBatch: 2, MaxWait: 50 * time.Millisecond}, rec.exec)
	defer b.Close()

	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(edge int) {
			defer wg.Done()
			if _, err := b.Submit(EvalSpec{Edge: edge}); err != nil {
				t.Errorf("Submit(%d): %v", edge, err)
			}
		}(i)
	}
	wg.Wait()

	total := 0
	for _, sz := range rec.batchSizes() {
		if sz > 2 {
			t.Errorf("batch of %d exceeds MaxBatch=2", sz)
		}
		total += sz
	}
	if total != n {
		t.Errorf("executed %d jobs, want %d", total, n)
	}
}

// TestBatcherCloseRejectsSubmit pins teardown: Submit after Close fails
// with ErrSessionClosed instead of hanging, and Close is idempotent.
func TestBatcherCloseRejectsSubmit(t *testing.T) {
	rec := &recordingExec{}
	b := newBatcher(BatcherConfig{}, rec.exec)
	b.Close()
	b.Close() // idempotent

	if _, err := b.Submit(EvalSpec{}); err != ErrSessionClosed {
		t.Fatalf("Submit after Close: err = %v, want ErrSessionClosed", err)
	}
}

// TestBatcherExecutorDrop pins the no-hang guarantee: an executor that
// forgets to fill a job still releases the waiter, with an error.
func TestBatcherExecutorDrop(t *testing.T) {
	b := newBatcher(BatcherConfig{MaxWait: time.Millisecond}, func(batch []*evalJob) {})
	defer b.Close()

	_, err := b.Submit(EvalSpec{Edge: 1})
	if err == nil {
		t.Fatal("Submit returned nil error from an executor that dropped the request")
	}
}
