package service

// Wire types of the PLF service: everything a client sends or receives
// is defined here, JSON-encoded on the wire. The likelihoods carry
// their raw float64 bit pattern alongside the decimal rendering so
// bit-for-bit comparisons (the repo's standard equivalence check)
// survive the JSON round trip.

import (
	"fmt"
	"math"
	"time"

	"oocphylo/internal/obs"
)

// SessionConfig describes a named session: alignment + model + tree,
// plus its resource quota. It is submitted at creation and persisted in
// the session's park checkpoint so a restarted daemon can revive the
// session on the next request.
type SessionConfig struct {
	// Name identifies the session in URLs and on the /debug endpoint.
	// Letters, digits, '.', '_' and '-' only (it names files on disk).
	Name string `json:"name"`

	// Alignment is the inline alignment text; Path is a server-side
	// file instead. Exactly one must be set.
	Alignment string `json:"alignment,omitempty"`
	Path      string `json:"path,omitempty"`
	// Format is "phylip" (default) or "fasta".
	Format string `json:"format,omitempty"`
	// DataType is "dna" (default) or "aa".
	DataType string `json:"data_type,omitempty"`

	// Model selects the substitution model: JC, K80, HKY, GTR (default)
	// for DNA, POISSON for protein.
	Model string `json:"model,omitempty"`
	// Kappa is the K80/HKY transition/transversion ratio (default 2).
	Kappa float64 `json:"kappa,omitempty"`
	// Alpha enables Γ rate heterogeneity when > 0, over Cats categories
	// (default 4).
	Alpha float64 `json:"alpha,omitempty"`
	Cats  int     `json:"cats,omitempty"`
	// PInv is the +I invariant-sites proportion (0 = disabled).
	PInv float64 `json:"pinv,omitempty"`
	// UniformFreqs uses uniform instead of empirical base frequencies.
	UniformFreqs bool `json:"uniform_freqs,omitempty"`

	// Newick is the starting/fixed tree; TreePath a server-side file;
	// when both are empty StartTree picks the construction ("parsimony"
	// default, "nj" or "random", seeded by Seed).
	Newick    string `json:"newick,omitempty"`
	TreePath  string `json:"tree_path,omitempty"`
	StartTree string `json:"start_tree,omitempty"`
	Seed      int64  `json:"seed,omitempty"`

	// MemLimit is the session's ancestral-vector RAM quota in bytes —
	// the paper's -L per tenant. 0, or a quota covering every vector,
	// runs the session in RAM; otherwise the vectors live behind an
	// out-of-core manager whose slot pool the daemon resizes to keep
	// all tenants inside the global -mem-budget.
	MemLimit int64 `json:"mem_limit,omitempty"`
	// Strategy is the replacement strategy for out-of-core sessions
	// (random, lru (default), lfu, topological).
	Strategy string `json:"strategy,omitempty"`

	// Workers sets the PLF kernel worker goroutines (default 1; results
	// are identical for any value). Kernel and Precision mirror the CLI
	// flags (default auto / f64).
	Workers   int    `json:"workers,omitempty"`
	Kernel    string `json:"kernel,omitempty"`
	Precision string `json:"precision,omitempty"`
}

// fill applies the CLI-compatible defaults in place.
func (c *SessionConfig) fill() {
	if c.Format == "" {
		c.Format = "phylip"
	}
	if c.DataType == "" {
		c.DataType = "dna"
	}
	if c.Model == "" {
		c.Model = "GTR"
	}
	if c.Kappa <= 0 {
		c.Kappa = 2.0
	}
	if c.Cats <= 0 {
		c.Cats = 4
	}
	if c.StartTree == "" {
		c.StartTree = "parsimony"
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Strategy == "" {
		c.Strategy = "lru"
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
}

// validName reports whether name is safe to use in URLs and filenames.
func validName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return name != "." && name != ".."
}

// EvalSpec is one evaluate request against a session.
type EvalSpec struct {
	// Edge indexes the tree's edge list; the likelihood is evaluated at
	// that branch after whatever partial traversal it needs (default 0).
	Edge int `json:"edge"`
	// Length, when set, evaluates the sum table at this hypothetical
	// branch length instead of the edge's current one (the tree is not
	// modified).
	Length *float64 `json:"length,omitempty"`
	// Full forces a fresh full engine pass (invalidate + complete
	// traversal) before evaluating — what a one-shot CLI run pays. The
	// default reuses valid ancestral vectors from earlier requests in
	// the batch/session, which is the entire point of coalescing;
	// results are bit-identical either way.
	Full bool `json:"full,omitempty"`
}

// EvalReply is the evaluate response: the likelihood plus the
// per-request timing ledger describing what batching did to it.
type EvalReply struct {
	Session string  `json:"session,omitempty"`
	Edge    int     `json:"edge"`
	LnL     float64 `json:"lnl"`
	// LnLBits is math.Float64bits(LnL) in hex — the bit-for-bit
	// comparison token (JSON float round-trips are not trusted).
	LnLBits string `json:"lnl_bits"`
	// Batch is the session-wide sequence number of the coalesced batch
	// this request rode in; BatchSize the number of requests in it.
	Batch     int64 `json:"batch"`
	BatchSize int   `json:"batch_size"`
	// WaitMicros is the time from enqueue to batch execution start
	// (queueing + coalescing window); ExecMicros the execution span of
	// the whole batch.
	WaitMicros int64 `json:"wait_us"`
	ExecMicros int64 `json:"exec_us"`
	// TraceID is set when the request carried a W3C traceparent header:
	// the 32-hex id under which the daemon recorded the request's spans
	// (GET /debug/trace/{id} replays them). Cost is this request's
	// resource ledger — counter deltas attributed to exactly this
	// request by the serialized session loop, the same numbers the
	// X-OOC-Cost response header carries.
	TraceID string    `json:"trace_id,omitempty"`
	Cost    *obs.Cost `json:"cost,omitempty"`
}

// FormatLnLBits renders a float64's bit pattern the way EvalReply and
// the CLI's -lnl-bits flag print it.
func FormatLnLBits(lnl float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(lnl))
}

// OptimizeSpec requests branch-length smoothing on the session tree.
type OptimizeSpec struct {
	// Passes bounds the smoothing sweeps (default 2); Eps is the early
	// exit threshold on per-sweep improvement (default 1e-3).
	Passes int     `json:"passes,omitempty"`
	Eps    float64 `json:"eps,omitempty"`
}

// OptimizeReply reports the smoothed tree.
type OptimizeReply struct {
	Session string  `json:"session,omitempty"`
	LnL     float64 `json:"lnl"`
	LnLBits string  `json:"lnl_bits"`
	Newick  string  `json:"newick"`
}

// SessionInfo is the status document for one session.
type SessionInfo struct {
	Name     string `json:"name"`
	State    string `json:"state"` // "active" or "parked"
	Taxa     int    `json:"taxa"`
	Sites    int    `json:"sites"`
	Patterns int    `json:"patterns"`
	// OutOfCore reports whether the session's vectors live behind the
	// OOC manager; Slots is its current live pool size (0 in-core or
	// parked); QuotaBytes the configured vector quota; GrantBytes what
	// the governor currently allows (== quota unless squeezed).
	OutOfCore  bool  `json:"out_of_core"`
	Slots      int   `json:"slots"`
	QuotaBytes int64 `json:"quota_bytes"`
	GrantBytes int64 `json:"grant_bytes"`
	// LnL is the last likelihood the session computed (0 before the
	// first evaluate); LnLBits its bit pattern.
	LnL     float64 `json:"lnl"`
	LnLBits string  `json:"lnl_bits"`
	// Evals, Batches, Parks, Revives count the session's lifetime
	// activity (they survive park/revive cycles, not daemon restarts).
	Evals   int64 `json:"evals"`
	Batches int64 `json:"batches"`
	Parks   int64 `json:"parks"`
	Revives int64 `json:"revives"`
	// LastUsed is the last request touch (the idle reaper's clock).
	LastUsed time.Time `json:"last_used"`
}

// errorReply is the JSON error envelope.
type errorReply struct {
	Error string `json:"error"`
}
