package service

// Client — the thin HTTP client for the daemon, used by the CLI's
// client subcommands, the CI smoke test and the differential tests. It
// speaks exactly the wire types in types.go; likelihood comparisons go
// through LnLBits, never the decimal rendering.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"oocphylo/internal/obs"
)

// Client retry defaults: how many times an idempotent request is
// re-issued after a 503 (or transport failure), and the longest single
// back-off the client will honor — a daemon's Retry-After above the cap
// is clamped, not obeyed literally.
const (
	DefaultClientRetries  = 2
	clientRetryBackoffCap = 2 * time.Second
)

// Client talks to one daemon.
type Client struct {
	base    string
	hc      *http.Client
	trace   bool
	retries int
	sleep   func(time.Duration) // injectable for tests
}

// SetTrace toggles distributed tracing: when on, every request carries
// a freshly minted W3C traceparent header, so the daemon records a full
// server-side trace (session loop → batcher → engine → manager → tiered
// store → remote object store) and returns the trace id and cost ledger
// in the evaluate reply and the X-OOC-Trace / X-OOC-Cost headers.
func (c *Client) SetTrace(on bool) { c.trace = on }

// NewClient targets a daemon at addr ("host:port" or a full URL).
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		base:    strings.TrimRight(addr, "/"),
		hc:      &http.Client{Timeout: 5 * time.Minute},
		retries: DefaultClientRetries,
		sleep:   time.Sleep,
	}
}

// SetRetryBudget caps how many times an idempotent request is retried
// after a retryable failure (0 disables retries entirely).
func (c *Client) SetRetryBudget(n int) {
	if n < 0 {
		n = 0
	}
	c.retries = n
}

// do runs one JSON round trip; GETs are retryable, mutating requests
// are not.
func (c *Client) do(method, path string, in, out any) error {
	return c.doIdem(method, path, in, out, method == http.MethodGet)
}

// doIdem is do with an explicit idempotency verdict. A daemon sheds
// load and surfaces remote-tier outages as 503 + Retry-After; for
// requests that are pure reads of the likelihood function (every GET,
// plus evaluate/newview — recomputation changes nothing), the client
// honors the hint and retries inside its budget. Transport failures
// (connection drop before a response) are retried on the same terms.
func (c *Client) doIdem(method, path string, in, out any, idempotent bool) error {
	var last error
	for attempt := 0; ; attempt++ {
		err, backoff, retryable := c.once(method, path, in, out)
		if err == nil {
			return nil
		}
		last = err
		if !idempotent || !retryable || attempt >= c.retries {
			return last
		}
		if backoff <= 0 {
			// No server hint: modest linear backoff.
			backoff = time.Duration(attempt+1) * 200 * time.Millisecond
		}
		if backoff > clientRetryBackoffCap {
			backoff = clientRetryBackoffCap
		}
		c.sleep(backoff)
	}
}

// once runs a single JSON round trip. A non-2xx response is decoded as
// an errorReply and surfaced as an error; retryable marks failures the
// daemon declared transient (503) or where no response arrived at all,
// and backoff carries the server's Retry-After hint when present.
func (c *Client) once(method, path string, in, out any) (err error, backoff time.Duration, retryable bool) {
	var body io.Reader
	if in != nil {
		b, merr := json.Marshal(in)
		if merr != nil {
			return merr, 0, false
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err, 0, false
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.trace {
		header, _ := obs.NewTraceparent()
		req.Header.Set("traceparent", header)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err, 0, true // no response: safe to re-ask an idempotent question
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err, 0, true
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		if resp.StatusCode == http.StatusServiceUnavailable {
			retryable = true
			if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs > 0 {
				backoff = time.Duration(secs) * time.Second
			}
		}
		var er errorReply
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			return fmt.Errorf("%s %s: %s (status %d)", method, path, er.Error, resp.StatusCode), backoff, retryable
		}
		return fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(data))), backoff, retryable
	}
	if out == nil {
		return nil, 0, false
	}
	return json.Unmarshal(data, out), 0, false
}

// Health pings /healthz.
func (c *Client) Health() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// CreateSession registers a new session.
func (c *Client) CreateSession(cfg SessionConfig) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(http.MethodPost, "/v1/sessions", cfg, &info)
	return info, err
}

// Sessions lists every session.
func (c *Client) Sessions() ([]SessionInfo, error) {
	var infos []SessionInfo
	err := c.do(http.MethodGet, "/v1/sessions", nil, &infos)
	return infos, err
}

// SessionInfo fetches one session's status document.
func (c *Client) SessionInfo(name string) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(http.MethodGet, "/v1/sessions/"+name, nil, &info)
	return info, err
}

// DeleteSession removes a session and its files.
func (c *Client) DeleteSession(name string) error {
	return c.do(http.MethodDelete, "/v1/sessions/"+name, nil, nil)
}

// Evaluate submits one evaluate request (rides the coalescing
// batcher). Evaluates are pure — the same spec recomputes the same
// bits — so a 503 (load shed, remote-tier outage) is retried inside
// the client's budget, honoring the daemon's Retry-After hint.
func (c *Client) Evaluate(name string, spec EvalSpec) (EvalReply, error) {
	var rep EvalReply
	err := c.doIdem(http.MethodPost, "/v1/sessions/"+name+"/evaluate", spec, &rep, true)
	return rep, err
}

// Newview forces a fresh full pass and evaluates at the given edge.
// Pure like Evaluate, so retried on the same terms.
func (c *Client) Newview(name string, edge int) (EvalReply, error) {
	var rep EvalReply
	err := c.doIdem(http.MethodPost, "/v1/sessions/"+name+"/newview", EvalSpec{Edge: edge}, &rep, true)
	return rep, err
}

// Optimize smooths the session tree's branch lengths.
func (c *Client) Optimize(name string, spec OptimizeSpec) (OptimizeReply, error) {
	var rep OptimizeReply
	err := c.do(http.MethodPost, "/v1/sessions/"+name+"/optimize", spec, &rep)
	return rep, err
}

// Park checkpoints the session to disk and frees its RAM.
func (c *Client) Park(name string) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(http.MethodPost, "/v1/sessions/"+name+"/park", nil, &info)
	return info, err
}

// Tree returns the session's current Newick.
func (c *Client) Tree(name string) (string, error) {
	var rep struct {
		Newick string `json:"newick"`
	}
	err := c.do(http.MethodGet, "/v1/sessions/"+name+"/tree", nil, &rep)
	return rep.Newick, err
}
