package service

// Client — the thin HTTP client for the daemon, used by the CLI's
// client subcommands, the CI smoke test and the differential tests. It
// speaks exactly the wire types in types.go; likelihood comparisons go
// through LnLBits, never the decimal rendering.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"oocphylo/internal/obs"
)

// Client talks to one daemon.
type Client struct {
	base  string
	hc    *http.Client
	trace bool
}

// SetTrace toggles distributed tracing: when on, every request carries
// a freshly minted W3C traceparent header, so the daemon records a full
// server-side trace (session loop → batcher → engine → manager → tiered
// store → remote object store) and returns the trace id and cost ledger
// in the evaluate reply and the X-OOC-Trace / X-OOC-Cost headers.
func (c *Client) SetTrace(on bool) { c.trace = on }

// NewClient targets a daemon at addr ("host:port" or a full URL).
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		base: strings.TrimRight(addr, "/"),
		hc:   &http.Client{Timeout: 5 * time.Minute},
	}
}

// do runs one JSON round trip. A non-2xx response is decoded as an
// errorReply and surfaced as an error.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.trace {
		header, _ := obs.NewTraceparent()
		req.Header.Set("traceparent", header)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var er errorReply
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			return fmt.Errorf("%s %s: %s (status %d)", method, path, er.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Health pings /healthz.
func (c *Client) Health() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// CreateSession registers a new session.
func (c *Client) CreateSession(cfg SessionConfig) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(http.MethodPost, "/v1/sessions", cfg, &info)
	return info, err
}

// Sessions lists every session.
func (c *Client) Sessions() ([]SessionInfo, error) {
	var infos []SessionInfo
	err := c.do(http.MethodGet, "/v1/sessions", nil, &infos)
	return infos, err
}

// SessionInfo fetches one session's status document.
func (c *Client) SessionInfo(name string) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(http.MethodGet, "/v1/sessions/"+name, nil, &info)
	return info, err
}

// DeleteSession removes a session and its files.
func (c *Client) DeleteSession(name string) error {
	return c.do(http.MethodDelete, "/v1/sessions/"+name, nil, nil)
}

// Evaluate submits one evaluate request (rides the coalescing batcher).
func (c *Client) Evaluate(name string, spec EvalSpec) (EvalReply, error) {
	var rep EvalReply
	err := c.do(http.MethodPost, "/v1/sessions/"+name+"/evaluate", spec, &rep)
	return rep, err
}

// Newview forces a fresh full pass and evaluates at the given edge.
func (c *Client) Newview(name string, edge int) (EvalReply, error) {
	var rep EvalReply
	err := c.do(http.MethodPost, "/v1/sessions/"+name+"/newview", EvalSpec{Edge: edge}, &rep)
	return rep, err
}

// Optimize smooths the session tree's branch lengths.
func (c *Client) Optimize(name string, spec OptimizeSpec) (OptimizeReply, error) {
	var rep OptimizeReply
	err := c.do(http.MethodPost, "/v1/sessions/"+name+"/optimize", spec, &rep)
	return rep, err
}

// Park checkpoints the session to disk and frees its RAM.
func (c *Client) Park(name string) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(http.MethodPost, "/v1/sessions/"+name+"/park", nil, &info)
	return info, err
}

// Tree returns the session's current Newick.
func (c *Client) Tree(name string) (string, error) {
	var rep struct {
		Newick string `json:"newick"`
	}
	err := c.do(http.MethodGet, "/v1/sessions/"+name+"/tree", nil, &rep)
	return rep.Newick, err
}
