package service

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"oocphylo/internal/bio"
	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/sim"
)

// writeTestAlignment simulates a dataset and writes it as phylip,
// returning the path plus the alignment's memory shape under the test
// model config (vector bytes and in-core need) so tests can pick
// quotas.
func writeTestAlignment(t *testing.T, dir string, taxa, sites int, seed int64) (path string, vecBytes, need int64) {
	t.Helper()
	d, err := sim.NewDataset(sim.Config{Taxa: taxa, Sites: sites, GammaAlpha: 1, Seed: seed})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	var buf bytes.Buffer
	if err := bio.WritePhylip(&buf, d.Alignment); err != nil {
		t.Fatalf("WritePhylip: %v", err)
	}
	path = filepath.Join(dir, fmt.Sprintf("aln-%d.phy", seed))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	pats, err := bio.Compress(d.Alignment)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SessionConfig{Model: "GTR", Alpha: 1, Cats: 4}
	cfg.fill()
	m, err := buildModel(cfg, pats)
	if err != nil {
		t.Fatal(err)
	}
	vecLen, err := plf.CarrierLength(m, pats.NumPatterns(), plf.PrecisionF64)
	if err != nil {
		t.Fatal(err)
	}
	vecBytes = int64(vecLen) * 8
	need = int64(d.Tree.NumInner()) * vecBytes
	return path, vecBytes, need
}

func newTestServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func baseSession(name, alnPath string) SessionConfig {
	return SessionConfig{
		Name:  name,
		Path:  alnPath,
		Model: "GTR",
		Alpha: 1,
		Cats:  4,
	}
}

// TestServiceDifferentialBatchedVsOneShot is the tentpole's acceptance
// test: N concurrent evaluates through the coalescing batcher must be
// bit-for-bit identical to a fresh one-shot pass over the same session
// config. Run under -race this also exercises the loop-goroutine
// serialisation.
func TestServiceDifferentialBatchedVsOneShot(t *testing.T) {
	dir := t.TempDir()
	alnPath, _, _ := writeTestAlignment(t, dir, 10, 300, 7)
	srv := newTestServer(t, ServerConfig{DataDir: dir, Batch: BatcherConfig{MaxBatch: 8, MaxWait: 20 * time.Millisecond}})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)

	// Reference: a session with the same config, answered by a forced
	// fresh full pass (what a one-shot CLI run computes).
	if _, err := c.CreateSession(baseSession("ref", alnPath)); err != nil {
		t.Fatalf("create ref: %v", err)
	}
	ref, err := c.Newview("ref", 0)
	if err != nil {
		t.Fatalf("newview ref: %v", err)
	}
	if ref.LnL >= 0 {
		t.Fatalf("reference lnL %v is not a log likelihood", ref.LnL)
	}

	// Batched: N concurrent evaluates against an identically configured
	// session.
	if _, err := c.CreateSession(baseSession("bat", alnPath)); err != nil {
		t.Fatalf("create bat: %v", err)
	}
	const n = 8
	replies := make([]EvalReply, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i], errs[i] = c.Evaluate("bat", EvalSpec{Edge: 0})
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("evaluate %d: %v", i, errs[i])
		}
		if replies[i].LnLBits != ref.LnLBits {
			t.Errorf("evaluate %d: lnl_bits %s != one-shot %s (lnl %v vs %v)",
				i, replies[i].LnLBits, ref.LnLBits, replies[i].LnL, ref.LnL)
		}
		if replies[i].BatchSize < 1 || replies[i].ExecMicros < 0 || replies[i].WaitMicros < 0 {
			t.Errorf("evaluate %d: malformed ledger %+v", i, replies[i])
		}
	}

	info, err := c.SessionInfo("bat")
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if info.Evals != n {
		t.Errorf("session evals = %d, want %d", info.Evals, n)
	}
	if info.Batches < 1 || info.Batches > n {
		t.Errorf("session batches = %d, want in [1,%d]", info.Batches, n)
	}
}

// TestServiceHypotheticalLengthAndFull pins the two evaluate variants:
// a hypothetical-length evaluate must differ from the current-length
// one (the sum table was consulted at a different t), and Full passes
// reproduce the same bits as incremental ones.
func TestServiceHypotheticalLengthAndFull(t *testing.T) {
	dir := t.TempDir()
	alnPath, _, _ := writeTestAlignment(t, dir, 8, 200, 11)
	srv := newTestServer(t, ServerConfig{DataDir: dir})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)

	if _, err := c.CreateSession(baseSession("s", alnPath)); err != nil {
		t.Fatal(err)
	}
	cur, err := c.Evaluate("s", EvalSpec{Edge: 2})
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.Evaluate("s", EvalSpec{Edge: 2, Full: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.LnLBits != cur.LnLBits {
		t.Errorf("full pass bits %s != incremental %s", full.LnLBits, cur.LnLBits)
	}
	length := 0.42
	hyp, err := c.Evaluate("s", EvalSpec{Edge: 2, Length: &length})
	if err != nil {
		t.Fatal(err)
	}
	if hyp.LnLBits == cur.LnLBits {
		t.Errorf("hypothetical-length evaluate returned the current-length bits %s", cur.LnLBits)
	}
	// The hypothetical evaluate must not have mutated the tree: the
	// current-length answer is unchanged.
	again, err := c.Evaluate("s", EvalSpec{Edge: 2})
	if err != nil {
		t.Fatal(err)
	}
	if again.LnLBits != cur.LnLBits {
		t.Errorf("tree perturbed by hypothetical evaluate: %s != %s", again.LnLBits, cur.LnLBits)
	}
}

// TestServiceParkReviveBitIdentical pins the park/revive cycle for an
// out-of-core session: park writes a checkpoint + store manifest, the
// revive adopts the backing file, and the next evaluate returns the
// exact bits from before the park.
func TestServiceParkReviveBitIdentical(t *testing.T) {
	dir := t.TempDir()
	alnPath, vecBytes, need := writeTestAlignment(t, dir, 12, 300, 3)
	srv := newTestServer(t, ServerConfig{DataDir: dir})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)

	cfg := baseSession("ooc", alnPath)
	cfg.MemLimit = need / 2
	if cfg.MemLimit < int64(ooc.MinSlots)*vecBytes {
		t.Fatalf("test dataset too small to go out of core: need %d, vecBytes %d", need, vecBytes)
	}
	info, err := c.CreateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !info.OutOfCore {
		t.Fatalf("session not out of core: %+v", info)
	}

	before, err := c.Evaluate("ooc", EvalSpec{Edge: 1})
	if err != nil {
		t.Fatal(err)
	}

	parked, err := c.Park("ooc")
	if err != nil {
		t.Fatalf("park: %v", err)
	}
	if parked.State != "parked" {
		t.Fatalf("state after park = %q", parked.State)
	}
	if _, err := os.Stat(filepath.Join(dir, "ooc.ckpt")); err != nil {
		t.Fatalf("park left no checkpoint: %v", err)
	}

	after, err := c.Evaluate("ooc", EvalSpec{Edge: 1})
	if err != nil {
		t.Fatalf("evaluate after park: %v", err)
	}
	if after.LnLBits != before.LnLBits {
		t.Errorf("revive changed the likelihood: %s -> %s", before.LnLBits, after.LnLBits)
	}
	info, err = c.SessionInfo("ooc")
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "active" || info.Parks != 1 || info.Revives != 1 {
		t.Errorf("after revive: state=%s parks=%d revives=%d, want active/1/1", info.State, info.Parks, info.Revives)
	}
}

// TestServiceRestartAdoptsParkedSessions pins daemon restart: a new
// server over the same data directory lists the parked session and
// revives it bit-identically on the next request — RAM state is fully
// reconstructable from <name>.aln + <name>.ckpt (+ .vec for OOC).
func TestServiceRestartAdoptsParkedSessions(t *testing.T) {
	dir := t.TempDir()
	alnPath, _, _ := writeTestAlignment(t, dir, 9, 250, 5)

	srv1, err := NewServer(ServerConfig{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ses, err := srv1.CreateSession(baseSession("keep", alnPath))
	if err != nil {
		t.Fatal(err)
	}
	before, err := ses.Evaluate(EvalSpec{Edge: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.Close(); err != nil { // Close parks everything
		t.Fatalf("close: %v", err)
	}

	srv2 := newTestServer(t, ServerConfig{DataDir: dir})
	infos := srv2.Sessions()
	if len(infos) != 1 || infos[0].Name != "keep" || infos[0].State != "parked" {
		t.Fatalf("restarted daemon sessions = %+v, want one parked %q", infos, "keep")
	}
	ses2, ok := srv2.Session("keep")
	if !ok {
		t.Fatal("session not adopted")
	}
	after, err := ses2.Evaluate(EvalSpec{Edge: 0})
	if err != nil {
		t.Fatalf("evaluate after restart: %v", err)
	}
	if after.LnLBits != before.LnLBits {
		t.Errorf("restart changed the likelihood: %s -> %s", before.LnLBits, after.LnLBits)
	}
}

// TestServiceAdmissionControl pins the governor's floor arithmetic: a
// session whose floor cannot fit beside the active tenants is rejected
// with an admission error (503 on the wire), and fits again once the
// incumbent is parked.
func TestServiceAdmissionControl(t *testing.T) {
	dir := t.TempDir()
	alnPath, _, need := writeTestAlignment(t, dir, 10, 300, 13)

	// Budget holds exactly one in-core copy.
	srv := newTestServer(t, ServerConfig{DataDir: dir, MemBudget: need + need/4})
	if _, err := srv.CreateSession(baseSession("first", alnPath)); err != nil {
		t.Fatalf("first create: %v", err)
	}
	_, err := srv.CreateSession(baseSession("second", alnPath))
	if err == nil {
		t.Fatal("second in-core session admitted past the budget")
	}
	if !IsAdmissionError(err) {
		t.Fatalf("rejection is not an admission error: %v", err)
	}
	if srv.mxRejected.Value() == 0 {
		t.Error("svc.rejected counter not incremented")
	}

	// Park the incumbent: its floor drops to zero, the rejected config
	// now fits.
	if err := srv.ParkSession("first"); err != nil {
		t.Fatalf("park first: %v", err)
	}
	if _, err := srv.CreateSession(baseSession("second", alnPath)); err != nil {
		t.Fatalf("create after park still rejected: %v", err)
	}
}

// TestServiceMultiTenantSqueeze pins the proportional grant: two active
// out-of-core tenants under a budget smaller than their combined quotas
// end up with grants that fit, enforced as live pool shrinks on the
// incumbent.
func TestServiceMultiTenantSqueeze(t *testing.T) {
	dir := t.TempDir()
	alnPath, vecBytes, need := writeTestAlignment(t, dir, 12, 300, 17)

	quota := need / 2 // each tenant asks for half its in-core footprint
	if quota < int64(ooc.MinSlots+2)*vecBytes {
		t.Fatalf("dataset too small: quota %d, vecBytes %d", quota, vecBytes)
	}
	budget := quota + quota/2 // both quotas do NOT fit; both floors do
	srv := newTestServer(t, ServerConfig{DataDir: dir, MemBudget: budget})

	cfgA := baseSession("a", alnPath)
	cfgA.MemLimit = quota
	sa, err := srv.CreateSession(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Evaluate(EvalSpec{Edge: 0}); err != nil {
		t.Fatal(err)
	}
	_, _, _, _, _, _ = sa.memShape()
	slotsBefore := sa.infoSnapshot().Slots

	cfgB := baseSession("b", alnPath)
	cfgB.MemLimit = quota
	sb, err := srv.CreateSession(cfgB)
	if err != nil {
		t.Fatalf("second OOC tenant rejected despite fitting floors: %v", err)
	}
	if _, err := sb.Evaluate(EvalSpec{Edge: 0}); err != nil {
		t.Fatal(err)
	}

	// The rebalance runs asynchronously through each session's loop;
	// poll for the squeeze to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ia, ib := sa.infoSnapshot(), sb.infoSnapshot()
		if ia.GrantBytes+ib.GrantBytes <= budget && ia.Slots < slotsBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("squeeze never landed: a={grant %d, slots %d (was %d)} b={grant %d, slots %d}, budget %d",
				ia.GrantBytes, ia.Slots, slotsBefore, ib.GrantBytes, ib.Slots, budget)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Both tenants still answer, bit-identically to each other (same
	// config, same data).
	ra, err := sa.Evaluate(EvalSpec{Edge: 0})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sb.Evaluate(EvalSpec{Edge: 0})
	if err != nil {
		t.Fatal(err)
	}
	if ra.LnLBits != rb.LnLBits {
		t.Errorf("squeezed tenants disagree: %s vs %s", ra.LnLBits, rb.LnLBits)
	}
}

// TestServiceValidation pins the cheap guards: bad names, duplicate
// names, unknown sessions and bad edges all fail cleanly.
func TestServiceValidation(t *testing.T) {
	dir := t.TempDir()
	alnPath, _, _ := writeTestAlignment(t, dir, 8, 150, 23)
	srv := newTestServer(t, ServerConfig{DataDir: dir})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)

	if _, err := c.CreateSession(SessionConfig{Name: "../evil", Path: alnPath}); err == nil {
		t.Error("path-traversal name accepted")
	}
	if _, err := c.CreateSession(baseSession("dup", alnPath)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(baseSession("dup", alnPath)); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := c.Evaluate("ghost", EvalSpec{}); err == nil || !strings.Contains(err.Error(), "404") && !strings.Contains(err.Error(), "no session") {
		t.Errorf("evaluate on missing session: %v", err)
	}
	if _, err := c.Evaluate("dup", EvalSpec{Edge: 10_000}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := c.DeleteSession("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionInfo("dup"); err == nil {
		t.Error("deleted session still answers")
	}
	if _, err := os.Stat(filepath.Join(dir, "dup.aln")); !os.IsNotExist(err) {
		t.Error("delete left the session alignment behind")
	}
}

// TestServiceOptimizeAndTree smokes the optimize job and the tree
// endpoint: smoothing improves (or keeps) the likelihood and the
// Newick round-trips.
func TestServiceOptimizeAndTree(t *testing.T) {
	dir := t.TempDir()
	alnPath, _, _ := writeTestAlignment(t, dir, 8, 200, 29)
	srv := newTestServer(t, ServerConfig{DataDir: dir})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)

	if _, err := c.CreateSession(baseSession("opt", alnPath)); err != nil {
		t.Fatal(err)
	}
	before, err := c.Evaluate("opt", EvalSpec{Edge: 0})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Optimize("opt", OptimizeSpec{Passes: 2})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if rep.LnL < before.LnL {
		t.Errorf("smoothing worsened lnL: %v -> %v", before.LnL, rep.LnL)
	}
	if !strings.HasSuffix(strings.TrimSpace(rep.Newick), ";") {
		t.Errorf("optimize newick malformed: %q", rep.Newick)
	}
	nwk, err := c.Tree("opt")
	if err != nil {
		t.Fatal(err)
	}
	if nwk != rep.Newick {
		t.Errorf("tree endpoint %q != optimize newick %q", nwk, rep.Newick)
	}
}
