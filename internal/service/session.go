package service

// Session — one tenant of the daemon: an alignment + model + tree bound
// to a PLF engine, all engine work serialised on a single loop
// goroutine (the ooc manager and plf engine are single-API-goroutine
// subsystems; the loop IS that goroutine for the session's lifetime).
// The batcher, HTTP handlers, idle reaper and governor all talk to the
// engine exclusively through do(), so batches, optimise jobs, parks,
// revives and quota resizes interleave at operation boundaries — the
// same safe points the governance layer was built around.
//
// A session has three states: active (engine live), parked (engine torn
// down, exact-resume checkpoint + store manifest on disk) and closed.
// Parking is the multi-tenant memory story: an idle tenant costs disk,
// not RAM, and the next request revives it bit-identically via the
// checkpoint-v2 resume path (PR 5), re-admitted under whatever budget
// is left.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"oocphylo/internal/bio"
	"oocphylo/internal/checkpoint"
	"oocphylo/internal/distance"
	"oocphylo/internal/model"
	"oocphylo/internal/obs"
	"oocphylo/internal/ooc"
	"oocphylo/internal/parsimony"
	"oocphylo/internal/plf"
	"oocphylo/internal/search"
	"oocphylo/internal/tree"
)

type sessionState int

const (
	stateActive sessionState = iota
	stateParked
	stateClosed
)

func (st sessionState) String() string {
	switch st {
	case stateActive:
		return "active"
	case stateParked:
		return "parked"
	default:
		return "closed"
	}
}

// job is one unit of work for the session loop.
type job struct {
	fn   func() error
	done chan error
}

// Session is one named tenant. Mutable fields shared with other
// goroutines (state, ledgers, the engine pointers the metrics publisher
// reads) are guarded by mu; the engine itself is only ever TOUCHED from
// the loop goroutine.
type Session struct {
	name string
	cfg  SessionConfig
	srv  *Server

	jobs chan job
	quit chan struct{}

	alnPath  string // persisted alignment (phylip) for restart revives
	ckptPath string // park checkpoint
	vecPath  string // out-of-core backing file (sidecar at .sum)

	mu       sync.Mutex
	state    sessionState
	lastUsed time.Time
	// memory shape, set by setupEngine and read by the governor
	outOfCore bool
	nVecs     int
	vecBytes  int64 // bytes per ancestral vector
	needBytes int64 // nVecs * vecBytes (the in-core footprint)
	quota     int64 // configured vector quota (== needBytes when in-core)
	grant     int64 // what the governor currently allows
	// activity ledger (survives park/revive)
	lnl            float64
	round          int
	evals, batches int64
	parks, revives int64
	resizes        int64

	// engine state: owned by the loop goroutine, pointers mirrored
	// under mu for the metrics publisher.
	pats  *bio.Patterns
	m     *model.Model
	t     *tree.Tree
	eng   *plf.Engine
	mgr   *ooc.Manager
	cs    *ooc.ChecksumStore
	store ooc.Store
	// remote is the object-store tier under a tiered stack (nil for
	// local backing files). TieredStore.Close does not close it — the
	// session owns it and closes it last. tier is the tiered store
	// itself (nil for local backing files): the cost-attribution
	// snapshots read its counters and traced requests set its span.
	remote ooc.Store
	tier   *ooc.TieredStore
	wd     *ooc.Watchdog

	batcher *Batcher
	mx      sessionMetrics
}

// sessionMetrics are the per-session instruments on the /debug
// endpoint, pre-resolved at registration (nil-safe when the server has
// no registry).
type sessionMetrics struct {
	evals, batches, parks, revives, resizes *obs.Counter
	wdFailures, oocMisses, oocRequests      *obs.Counter
	slots, parked                           *obs.Gauge
	lnl                                     *obs.FloatGauge
}

// newSession wires the loop and batcher; the engine is built by the
// first build/ensureLive job.
func newSession(srv *Server, cfg SessionConfig) *Session {
	s := &Session{
		name:     cfg.Name,
		cfg:      cfg,
		srv:      srv,
		jobs:     make(chan job), // unbuffered: a successful send is a rendezvous with the loop
		quit:     make(chan struct{}),
		alnPath:  filepath.Join(srv.cfg.DataDir, cfg.Name+".aln"),
		ckptPath: filepath.Join(srv.cfg.DataDir, cfg.Name+".ckpt"),
		vecPath:  filepath.Join(srv.cfg.DataDir, cfg.Name+".vec"),
		lastUsed: time.Now(),
		state:    stateParked, // nothing live until build/revive
	}
	reg := srv.reg
	p := "svc.session." + cfg.Name + "."
	s.mx = sessionMetrics{
		evals:       reg.Counter(p + "evals"),
		batches:     reg.Counter(p + "batches"),
		parks:       reg.Counter(p + "parks"),
		revives:     reg.Counter(p + "revives"),
		resizes:     reg.Counter(p + "resizes"),
		wdFailures:  reg.Counter(p + "watchdog_failures"),
		oocMisses:   reg.Counter(p + "ooc_misses"),
		oocRequests: reg.Counter(p + "ooc_requests"),
		slots:       reg.Gauge(p + "slots"),
		parked:      reg.Gauge(p + "parked"),
		lnl:         reg.FloatGauge(p + "lnl"),
	}
	reg.AddPublisher(s.publish)
	go s.loop()
	s.batcher = newBatcher(srv.cfg.Batch, s.execBatch)
	return s
}

// loop runs jobs one at a time until quit.
func (s *Session) loop() {
	for {
		select {
		case j := <-s.jobs:
			j.done <- j.fn()
		case <-s.quit:
			return
		}
	}
}

// do runs fn on the loop goroutine and returns its error. Returns
// ErrSessionClosed when the loop is gone.
func (s *Session) do(fn func() error) error {
	j := job{fn: fn, done: make(chan error, 1)}
	select {
	case s.jobs <- j:
		return <-j.done
	case <-s.quit:
		return ErrSessionClosed
	}
}

// touch stamps the idle-reaper clock.
func (s *Session) touch() {
	s.mu.Lock()
	s.lastUsed = time.Now()
	s.mu.Unlock()
}

// publish mirrors the session's ledger into its /debug instruments.
// Runs on registry Snapshot from any goroutine.
func (s *Session) publish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mx.evals.Set(s.evals)
	s.mx.batches.Set(s.batches)
	s.mx.parks.Set(s.parks)
	s.mx.revives.Set(s.revives)
	s.mx.resizes.Set(s.resizes)
	s.mx.lnl.Set(s.lnl)
	if s.state == stateParked {
		s.mx.parked.Set(1)
	} else {
		s.mx.parked.Set(0)
	}
	if s.mgr != nil {
		s.mx.slots.Set(int64(s.mgr.Slots()))
		st := s.mgr.Stats()
		s.mx.oocRequests.Set(st.Requests)
		s.mx.oocMisses.Set(st.Misses)
	} else {
		s.mx.slots.Set(0)
	}
	if s.wd != nil {
		s.mx.wdFailures.Set(s.wd.Stats().Failures)
	}
}

// info snapshots the status document.
func (s *Session) infoSnapshot() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	in := SessionInfo{
		Name:       s.name,
		State:      s.state.String(),
		OutOfCore:  s.outOfCore,
		QuotaBytes: s.quota,
		GrantBytes: s.grant,
		LnL:        s.lnl,
		LnLBits:    FormatLnLBits(s.lnl),
		Evals:      s.evals,
		Batches:    s.batches,
		Parks:      s.parks,
		Revives:    s.revives,
		LastUsed:   s.lastUsed,
	}
	if s.pats != nil {
		in.Taxa = s.pats.NumTaxa()
		in.Sites = s.pats.TotalSites()
		in.Patterns = s.pats.NumPatterns()
	}
	if s.mgr != nil {
		in.Slots = s.mgr.Slots()
	}
	return in
}

// memShape is the governor's view: (active, out-of-core, quota bytes,
// full in-core bytes, bytes per vector, vector count).
func (s *Session) memShape() (active, outOfCore bool, quota, need, vecBytes int64, nVecs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == stateActive, s.outOfCore, s.quota, s.needBytes, s.vecBytes, s.nVecs
}

// ---------------------------------------------------------------------
// Build (create-time) and revive (park checkpoint) — both end in
// setupEngine, the single place an engine comes to life.

// build parses the alignment, constructs model and starting tree, and
// brings the engine up. Runs on the loop goroutine at create time.
func (s *Session) build() error {
	aln, err := s.readAlignment()
	if err != nil {
		return err
	}
	// Persist the alignment next to the checkpoint: a restarted daemon
	// revives the session from these two files alone.
	f, err := os.Create(s.alnPath)
	if err != nil {
		return err
	}
	if err := bio.WritePhylip(f, aln); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	pats, err := bio.Compress(aln)
	if err != nil {
		return err
	}
	m, err := buildModel(s.cfg, pats)
	if err != nil {
		return err
	}
	t, err := s.buildTree(pats)
	if err != nil {
		return err
	}
	// Normalise the tree through a Newick round trip. Likelihoods are
	// representation-sensitive in floating point (edge order picks the
	// evaluation point; adjacency order the summation order), and a
	// revive rebuilds its tree via ParseNewick — so the FIRST build must
	// walk the parse representation too, or the session's bits would
	// change across its first park/revive cycle.
	t, err = tree.ParseNewick(tree.WriteNewick(t))
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.pats = pats
	s.mu.Unlock()
	return s.setupEngine(t, m, nil)
}

// readAlignment loads the session's alignment from the inline text or
// the server-side path.
func (s *Session) readAlignment() (*bio.Alignment, error) {
	dtype := bio.DNA
	if strings.EqualFold(s.cfg.DataType, "aa") {
		dtype = bio.AA
	}
	alphabet := bio.NewAlphabet(dtype)
	var r *strings.Reader
	switch {
	case s.cfg.Alignment != "":
		r = strings.NewReader(s.cfg.Alignment)
	case s.cfg.Path != "":
		data, err := os.ReadFile(s.cfg.Path)
		if err != nil {
			return nil, err
		}
		r = strings.NewReader(string(data))
	default:
		return nil, fmt.Errorf("service: session %q has neither inline alignment nor path", s.name)
	}
	if strings.EqualFold(s.cfg.Format, "fasta") {
		return bio.ReadFASTA(r, alphabet)
	}
	return bio.ReadPhylip(r, alphabet)
}

// loadPatterns re-reads the persisted alignment — the restart-revive
// path, where the in-memory patterns of the original daemon are gone.
func (s *Session) loadPatterns() error {
	dtype := bio.DNA
	if strings.EqualFold(s.cfg.DataType, "aa") {
		dtype = bio.AA
	}
	f, err := os.Open(s.alnPath)
	if err != nil {
		return fmt.Errorf("service: session %q alignment: %w", s.name, err)
	}
	defer f.Close()
	aln, err := bio.ReadPhylip(f, bio.NewAlphabet(dtype))
	if err != nil {
		return err
	}
	pats, err := bio.Compress(aln)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.pats = pats
	s.mu.Unlock()
	return nil
}

// buildModel mirrors the CLI's model construction so a session
// evaluates bit-identically to a one-shot run with the same flags.
func buildModel(cfg SessionConfig, pats *bio.Patterns) (*model.Model, error) {
	freqs := pats.BaseFrequencies()
	if cfg.UniformFreqs {
		for i := range freqs {
			freqs[i] = 1 / float64(len(freqs))
		}
	}
	var m *model.Model
	var err error
	switch strings.ToUpper(cfg.Model) {
	case "JC", "POISSON":
		m, err = model.NewJC(pats.Alphabet.States)
	case "K80":
		m, err = model.NewK80(cfg.Kappa)
	case "HKY":
		m, err = model.NewHKY(freqs, cfg.Kappa)
	case "GTR":
		if pats.Alphabet.States != 4 {
			return nil, fmt.Errorf("service: GTR is DNA-only; use POISSON for protein data")
		}
		m, err = model.NewGTR(freqs, []float64{1, 1, 1, 1, 1, 1}, 4)
	default:
		return nil, fmt.Errorf("service: unknown model %q", cfg.Model)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Alpha > 0 && cfg.Cats > 1 {
		if err := m.SetGamma(cfg.Alpha, cfg.Cats); err != nil {
			return nil, err
		}
	}
	if cfg.PInv > 0 {
		if err := m.SetInvariant(cfg.PInv); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// buildTree parses or constructs the starting topology.
func (s *Session) buildTree(pats *bio.Patterns) (*tree.Tree, error) {
	newick := s.cfg.Newick
	if newick == "" && s.cfg.TreePath != "" {
		data, err := os.ReadFile(s.cfg.TreePath)
		if err != nil {
			return nil, err
		}
		newick = string(data)
	}
	if newick != "" {
		t, err := tree.ParseNewick(newick)
		if err != nil {
			return nil, err
		}
		if t.NumTips != pats.NumTaxa() {
			return nil, fmt.Errorf("service: tree has %d tips, alignment %d taxa", t.NumTips, pats.NumTaxa())
		}
		return t, nil
	}
	switch strings.ToLower(s.cfg.StartTree) {
	case "parsimony", "mp":
		return parsimony.StepwiseAddition(pats, rand.New(rand.NewSource(s.cfg.Seed)))
	case "nj":
		return distance.NJTree(pats)
	case "random", "rand":
		return tree.RandomTopology(pats.Names, rand.New(rand.NewSource(s.cfg.Seed)), 0.05, 0.15)
	}
	return nil, fmt.Errorf("service: unknown start_tree %q", s.cfg.StartTree)
}

// setupEngine sizes the vector set, asks the governor for admission,
// builds the provider (in-memory, or an out-of-core manager over a
// checksummed backing file) and the engine, and activates the session.
// man, when non-nil, is a park checkpoint's store manifest: the backing
// file is adopted and validated instead of rebuilt, so a revive reuses
// the parked vectors byte-for-byte.
func (s *Session) setupEngine(t *tree.Tree, m *model.Model, man *ooc.Manifest) error {
	precision := s.cfg.Precision
	if precision == "" {
		precision = plf.PrecisionF64
	}
	vecLen, err := plf.CarrierLength(m, s.pats.NumPatterns(), precision)
	if err != nil {
		return err
	}
	n := t.NumInner()
	vecBytes := int64(vecLen) * 8
	need := int64(n) * vecBytes
	outOfCore := s.cfg.MemLimit > 0 && need > s.cfg.MemLimit
	quota := need
	if outOfCore {
		quota = s.cfg.MemLimit
		if quota < int64(ooc.MinSlots)*vecBytes {
			return fmt.Errorf("service: mem_limit %d B holds fewer than %d vectors of %d B (m >= 3)",
				quota, ooc.MinSlots, vecBytes)
		}
	}
	grant, err := s.srv.admit(s, outOfCore, quota, vecBytes)
	if err != nil {
		return err
	}

	var prov plf.VectorProvider
	if outOfCore {
		slots := int(grant / vecBytes)
		if slots < ooc.MinSlots {
			slots = ooc.MinSlots
		}
		if slots > n {
			slots = n
		}
		strat, err := newStrategy(s.cfg.Strategy, n, t, s.cfg.Seed)
		if err != nil {
			return err
		}
		store, cs, err := s.openStore(n, vecLen, man)
		if err != nil {
			return err
		}
		// A tiered store's cache index and in-flight buffers live on the
		// same heap as the slots: charge them against the grant so the
		// session's true footprint stays inside it.
		if ov := ooc.StoreMemOverhead(store); ov > 0 {
			slots = int((grant - ov) / vecBytes)
			if slots < ooc.MinSlots {
				slots = ooc.MinSlots
			}
			if slots > n {
				slots = n
			}
		}
		mgr, err := ooc.NewManager(ooc.Config{
			NumVectors: n, VectorLen: vecLen, Slots: slots,
			Strategy: strat, ReadSkipping: true, Store: store,
			Retry:      ooc.RetryPolicy{Max: 3},
			SyncWrites: true,
		})
		if err != nil {
			store.Close()
			return err
		}
		s.mgr, s.cs, s.store = mgr, cs, store
		prov = mgr
	} else {
		prov = plf.NewInMemoryProvider(n, vecLen)
	}

	eng, err := plf.NewWithPrecision(t, s.pats, m, prov, precision)
	if err != nil {
		s.closeProvider()
		return err
	}
	kernel := s.cfg.Kernel
	if kernel == "" {
		kernel = plf.KernelAuto
	}
	if err := eng.SetKernel(kernel); err != nil {
		eng.Close()
		s.closeProvider()
		return err
	}
	eng.SetWorkers(s.cfg.Workers)

	// The watchdog arbitrates the GLOBAL soft heap budget from inside
	// whichever session is computing: overshoot observed at this
	// session's safe points sheds this session's slots first, bounded
	// below by the floor and above by the governor's grant.
	if s.srv.cfg.MemBudget > 0 && s.mgr != nil {
		maxSlots := s.mgr.Slots()
		wd, err := ooc.NewWatchdog(s.mgr, ooc.WatchdogConfig{
			SoftBudget: s.srv.cfg.MemBudget,
			MaxSlots:   maxSlots,
		})
		if err != nil {
			eng.Close()
			s.closeProvider()
			return err
		}
		s.wd = wd
		eng.SetSafePoint(func() error { return wd.Check() })
	}

	s.mu.Lock()
	s.t, s.m, s.eng = t, m, eng
	s.outOfCore, s.nVecs, s.vecBytes, s.needBytes = outOfCore, n, vecBytes, need
	s.quota, s.grant = quota, grant
	s.state = stateActive
	s.mu.Unlock()
	return nil
}

// openStore opens the session's checksummed backing file: adopting and
// validating the parked file against the checkpoint manifest when one
// is supplied, creating a fresh pair otherwise (every vector is
// recomputable, so a failed adoption costs I/O, never correctness).
func (s *Session) openStore(n, vecLen int, man *ooc.Manifest) (ooc.Store, *ooc.ChecksumStore, error) {
	precision := s.cfg.Precision
	if precision == "" {
		precision = plf.PrecisionF64
	}
	if s.srv.cfg.StoreURL != "" {
		return s.openRemoteStore(n, vecLen, man, precision)
	}
	if man != nil {
		storePrec := man.Precision
		if storePrec == "" {
			storePrec = plf.PrecisionF64
		}
		if storePrec != precision {
			return nil, nil, &ooc.PrecisionMismatchError{Store: man.Precision, Run: precision}
		}
		fs, err := ooc.OpenFileStore(s.vecPath, n, vecLen)
		if err == nil {
			cs, cerr := ooc.OpenChecksumStore(fs, s.vecPath+".sum", n, vecLen)
			if cerr == nil {
				cs.SetPrecision(precision)
				if verr := cs.VerifyManifest(*man); verr == nil {
					return cs, cs, nil
				} else if ooc.IsPrecisionMismatch(verr) {
					cs.Close()
					return nil, nil, verr
				}
				cs.Close() // validation failed: rebuild below
			} else {
				fs.Close()
			}
		}
	}
	fs, err := ooc.NewFileStore(s.vecPath, n, vecLen)
	if err != nil {
		return nil, nil, err
	}
	cs, err := ooc.NewChecksumStore(fs, s.vecPath+".sum", n, vecLen)
	if err != nil {
		fs.Close()
		return nil, nil, err
	}
	cs.SetPrecision(precision)
	return cs, cs, nil
}

// sessionObjectURL maps the daemon's configured store endpoint to the
// object URL for one named session. The endpoint is either bare
// (remote://host:port → object <name>.vec) or carries one namespace
// segment (remote://host:port/ns → object ns.<name>.vec), so several
// daemons can share one object server; the object stays a single path
// segment either way, which is all the remote protocol allows.
func sessionObjectURL(storeURL, name string) string {
	base := strings.TrimSuffix(storeURL, "/")
	if host, ns, ok := strings.Cut(strings.TrimPrefix(base, "remote://"), "/"); ok && ns != "" {
		return "remote://" + host + "/" + ns + "." + name + ".vec"
	}
	return base + "/" + name + ".vec"
}

// openRemoteStore builds the session's tiered stack: an ObjectStore on
// the daemon's remote endpoint (object <name>.vec), a local write-back
// cache under DataDir/<name>.cache, and an outer ChecksumStore whose
// sidecar stays local — so a park checkpoint's manifest verifies a
// revived session's remote vectors exactly like a local backing file.
func (s *Session) openRemoteStore(n, vecLen int, man *ooc.Manifest, precision string) (ooc.Store, *ooc.ChecksumStore, error) {
	url := sessionObjectURL(s.srv.cfg.StoreURL, s.name)
	if _, err := ooc.ParseRemoteURL(url); err != nil {
		return nil, nil, err
	}
	obj, err := ooc.OpenObjectStore(url, n, vecLen)
	if err != nil {
		if obj, err = ooc.NewObjectStore(url, n, vecLen); err != nil {
			return nil, nil, fmt.Errorf("service: remote store %s: %w", url, err)
		}
	}
	tcfg := ooc.TieredConfig{
		NumVectors: n, VectorLen: vecLen,
		CacheDir:     filepath.Join(s.srv.cfg.DataDir, s.name+".cache"),
		CacheVectors: remoteCacheVectors(s.srv.cfg.CacheBytes, n, vecLen),
		Lanes:        s.srv.cfg.RemoteLanes,
		// The fault-tolerance stack: per-attempt deadlines, a jittered
		// retry budget for the network (distinct from the disk policy the
		// manager runs), a circuit breaker so a dead remote fails fast
		// into degraded mode, tail hedging, and the write-back spill
		// journal that absorbs dirty evictions during outages.
		RemoteDeadline: s.srv.cfg.RemoteDeadline,
		RemoteRetry:    ooc.RetryPolicy{Max: 3},
		Breaker:        ooc.BreakerConfig{Threshold: 5},
		HedgeAfter:     s.srv.cfg.HedgeAfter,
	}
	if s.srv.cfg.SpillDir != "" {
		tcfg.SpillDir = filepath.Join(s.srv.cfg.SpillDir, s.name+".spill")
	}
	if err := os.MkdirAll(tcfg.CacheDir, 0o755); err != nil {
		obj.Close()
		return nil, nil, err
	}
	ts, err := ooc.NewTieredStore(obj, tcfg)
	if err != nil {
		obj.Close()
		return nil, nil, err
	}
	if man != nil {
		storePrec := man.Precision
		if storePrec == "" {
			storePrec = plf.PrecisionF64
		}
		if storePrec != precision {
			ts.Close()
			obj.Close()
			return nil, nil, &ooc.PrecisionMismatchError{Store: man.Precision, Run: precision}
		}
		cs, cerr := ooc.OpenChecksumStore(ts, s.vecPath+".sum", n, vecLen)
		if cerr == nil {
			cs.SetPrecision(precision)
			if verr := cs.VerifyManifest(*man); verr == nil {
				s.remote = obj
				s.instrumentTier(ts)
				return cs, cs, nil
			} else if ooc.IsPrecisionMismatch(verr) {
				cs.Close()
				obj.Close()
				return nil, nil, verr
			}
		}
		// Adoption failed: the Close above (or the failed open) tore the
		// tier down — rebuild it for the fresh path. Every vector is
		// recomputable, so this costs I/O, never correctness.
		if cerr == nil {
			cs.Close()
		} else {
			ts.Close()
		}
		if ts, err = ooc.NewTieredStore(obj, tcfg); err != nil {
			obj.Close()
			return nil, nil, err
		}
	}
	cs, err := ooc.NewChecksumStore(ts, s.vecPath+".sum", n, vecLen)
	if err != nil {
		ts.Close()
		obj.Close()
		return nil, nil, err
	}
	cs.SetPrecision(precision)
	s.remote = obj
	s.instrumentTier(ts)
	return cs, cs, nil
}

// instrumentTier exports the session's tier counters under a
// per-session prefix on the daemon's /debug/vars. A revive builds a
// fresh TieredStore; re-instrumenting registers the same named
// instruments (the registry is idempotent by name) and a newer
// publisher, which runs after — and therefore overrides — the stale
// one from the parked incarnation.
func (s *Session) instrumentTier(ts *ooc.TieredStore) {
	s.mu.Lock()
	s.tier = ts
	s.mu.Unlock()
	ooc.InstrumentTieredStoreAs(s.srv.reg, ts, "svc.session."+s.name+".tier.")
}

// remoteCacheVectors converts a byte budget into cache-tier slots,
// defaulting to "hold everything" and flooring at one vector.
func remoteCacheVectors(budget int64, n, vecLen int) int {
	if budget <= 0 {
		return n
	}
	cv := int(budget / (int64(vecLen) * 8))
	if cv < 1 {
		cv = 1
	}
	if cv > n {
		cv = n
	}
	return cv
}

// newStrategy builds a replacement strategy by name.
func newStrategy(name string, n int, t *tree.Tree, seed int64) (ooc.Strategy, error) {
	switch strings.ToLower(name) {
	case "random", "rand":
		return ooc.NewRandom(rand.New(rand.NewSource(seed + 1))), nil
	case "lru":
		return ooc.NewLRU(n), nil
	case "lfu":
		return ooc.NewLFU(n), nil
	case "topological", "topo":
		return ooc.NewTopological(t), nil
	}
	return nil, fmt.Errorf("service: unknown strategy %q", name)
}

// ensureLive revives a parked session from its checkpoint. Runs on the
// loop goroutine; a no-op when the session is already active.
func (s *Session) ensureLive() error {
	s.mu.Lock()
	st := s.state
	s.mu.Unlock()
	switch st {
	case stateActive:
		return nil
	case stateClosed:
		return ErrSessionClosed
	}
	ck, err := checkpoint.Load(s.ckptPath)
	if err != nil {
		return fmt.Errorf("service: reviving %q: %w", s.name, err)
	}
	t, m, err := ck.Restore()
	if err != nil {
		return fmt.Errorf("service: reviving %q: %w", s.name, err)
	}
	if s.pats == nil {
		if err := s.loadPatterns(); err != nil {
			return err
		}
	}
	if t.NumTips != s.pats.NumTaxa() {
		return fmt.Errorf("service: checkpoint tree has %d tips, alignment %d taxa", t.NumTips, s.pats.NumTaxa())
	}
	if err := s.setupEngine(t, m, ck.Store); err != nil {
		return err
	}
	s.mu.Lock()
	s.lnl, s.round = ck.LnL, ck.Round
	s.revives++
	s.mu.Unlock()
	s.srv.noteRevive()
	s.srv.rebalance()
	return nil
}

// park checkpoints the session and tears the engine down. Runs on the
// loop goroutine; a no-op unless active. The checkpoint carries the
// session config (so a restarted daemon can rebuild the session from
// disk alone) and, for out-of-core sessions, the store manifest that
// lets the revive adopt the parked backing file bit-for-bit.
func (s *Session) park() error {
	s.mu.Lock()
	if s.state != stateActive {
		s.mu.Unlock()
		return nil
	}
	t, m, lnl, round := s.t, s.m, s.lnl, s.round
	s.mu.Unlock()

	ck := checkpoint.Capture(t, m, lnl, round)
	cfgJSON, err := json.Marshal(s.cfg)
	if err != nil {
		return err
	}
	ck.Meta = map[string]string{
		"service.session": s.name,
		"service.config":  string(cfgJSON),
	}
	if s.mgr != nil {
		if err := s.mgr.Flush(); err != nil {
			return err
		}
	}
	if s.cs != nil {
		if err := s.cs.Sync(); err != nil {
			return err
		}
		man := s.cs.Manifest()
		ck.Store = &man
	}
	if err := checkpoint.Save(s.ckptPath, ck); err != nil {
		return err
	}
	s.shutdownEngine()
	s.mu.Lock()
	s.state = stateParked
	s.parks++
	s.mu.Unlock()
	s.srv.notePark()
	s.srv.rebalance()
	return nil
}

// shutdownEngine releases every live resource. Loop goroutine only.
func (s *Session) shutdownEngine() {
	if s.eng != nil {
		s.eng.Close()
	}
	s.closeProvider()
	s.mu.Lock()
	s.eng, s.wd, s.t, s.m = nil, nil, nil, nil
	s.mu.Unlock()
}

// closeProvider tears down manager and store (manager first: it drains
// in-flight I/O before the store goes away).
func (s *Session) closeProvider() {
	if s.mgr != nil {
		s.mgr.Close()
	}
	if s.store != nil {
		s.store.Close()
	}
	if s.remote != nil {
		s.remote.Close()
	}
	s.mu.Lock()
	s.mgr, s.cs, s.store, s.remote, s.tier = nil, nil, nil, nil, nil
	s.mu.Unlock()
}

// close tears the session down for good. remove also deletes its
// on-disk files. Called from the server with the batcher already
// drained.
func (s *Session) close(remove bool) {
	_ = s.do(func() error {
		s.shutdownEngine()
		s.mu.Lock()
		s.state = stateClosed
		s.mu.Unlock()
		return nil
	})
	close(s.quit)
	if remove {
		os.Remove(s.alnPath)
		os.Remove(s.ckptPath)
		os.Remove(s.vecPath)
		os.Remove(s.vecPath + ".sum")
	}
}

// ---------------------------------------------------------------------
// Jobs.

// execBatch is the batcher's executor: ONE engine pass over the whole
// batch, on the loop goroutine. The first request pays whatever
// traversal its edge needs; later requests reuse every ancestral vector
// that is still valid — bit-identical to fresh passes, just cheaper.
//
// Tracing: the batch runs under one shared engine-pass span, parented
// in the first traced request's trace (a span cannot have parents in
// two traces, so the other traced requests record flow LINKS to it —
// the Chrome export draws the arrows). Around each request's slice of
// the pass, the engine/manager/tier span hooks point at that request's
// span, and the before/after movement of the layer counters becomes the
// request's cost ledger — exact attribution, because this loop is the
// only goroutine advancing them.
func (s *Session) execBatch(batch []*evalJob) {
	err := s.do(func() error {
		if err := s.ensureLive(); err != nil {
			return err
		}
		seq := s.batcher.seq
		var pass *obs.Span
		for _, j := range batch {
			if j.span != nil {
				pass = j.span.StartChild("svc.engine_pass")
				pass.SetAttr("batch", seq)
				pass.SetAttr("size", int64(len(batch)))
				break
			}
		}
		execStart := time.Now()
		for _, j := range batch {
			var before costSnapshot
			if pass != nil {
				s.attachSpans(j.span)
			}
			if j.span != nil {
				j.span.EmitChild("svc.batch_wait", j.enq, execStart.Sub(j.enq))
				before = s.costSnapshot()
			}
			lnl, jerr := s.evalOne(j.spec)
			var cost *obs.Cost
			if j.span != nil {
				delta := s.costSnapshot().sub(before)
				delta.WaitMicros = execStart.Sub(j.enq).Microseconds()
				j.span.AddCost(delta)
				if pass != nil && j.span.TraceID() != pass.TraceID() {
					j.span.LinkTo(pass)
				}
				c := delta
				cost = &c
			}
			if jerr != nil {
				j.err = jerr
				continue
			}
			j.res = EvalReply{
				Session:    s.name,
				Edge:       j.spec.Edge,
				LnL:        lnl,
				LnLBits:    FormatLnLBits(lnl),
				Batch:      seq,
				BatchSize:  len(batch),
				WaitMicros: execStart.Sub(j.enq).Microseconds(),
				Cost:       cost,
			}
			if j.span != nil {
				j.res.TraceID = j.span.TraceID().String()
			}
		}
		if pass != nil {
			s.attachSpans(nil)
			pass.End()
		}
		exec := time.Since(execStart).Microseconds()
		for _, j := range batch {
			if j.span != nil {
				j.span.AddCost(obs.Cost{ExecMicros: exec})
			}
			if j.err == nil {
				j.res.ExecMicros = exec
				if j.res.Cost != nil {
					j.res.Cost.ExecMicros = exec
				}
			}
		}
		s.mu.Lock()
		s.batches++
		s.evals += int64(len(batch))
		s.mu.Unlock()
		s.srv.noteBatch(len(batch), execStart, exec)
		return nil
	})
	if err != nil {
		for _, j := range batch {
			if j.err == nil && j.res == (EvalReply{}) {
				j.err = err
			}
		}
	}
}

// attachSpans points the engine (and, through it, the out-of-core
// manager) and the tiered store at sp for one request's slice of the
// batch. Loop goroutine only; the tier's fetch lanes capture the
// current span per enqueued miss, so the hand-off is race-free.
func (s *Session) attachSpans(sp *obs.Span) {
	if s.eng != nil {
		s.eng.SetSpan(sp)
	}
	if s.tier != nil {
		s.tier.SetSpan(sp)
	}
}

// costSnapshot captures the monotonic layer counters cost attribution
// differences around one request (loop goroutine: nothing else advances
// them while it holds the engine).
type costSnapshot struct {
	mgr     ooc.Stats
	tier    ooc.TierStats
	hasTier bool
	eng     plf.Stats
}

func (s *Session) costSnapshot() costSnapshot {
	var snap costSnapshot
	if s.mgr != nil {
		snap.mgr = s.mgr.Stats()
	}
	if s.tier != nil {
		snap.tier = s.tier.Stats()
		snap.hasTier = true
	}
	if s.eng != nil {
		snap.eng = s.eng.Stats
	}
	return snap
}

// sub converts the counter movement since before into one request's
// cost ledger entry. Under a tiered store the local/remote split comes
// from the tier counters; a plain backing file charges every manager
// read as local.
func (after costSnapshot) sub(before costSnapshot) obs.Cost {
	c := obs.Cost{
		VectorsFaulted: after.mgr.Misses - before.mgr.Misses,
		Recomputes:     after.eng.PolicyRecomputes - before.eng.PolicyRecomputes,
		Newviews:       after.eng.Newviews - before.eng.Newviews,
		PCacheHits:     after.eng.PCacheHits - before.eng.PCacheHits,
	}
	if after.hasTier {
		c.LocalReads = after.tier.CacheHits - before.tier.CacheHits
		c.BytesLocal = after.tier.BytesFromCache - before.tier.BytesFromCache
		c.RemoteGets = after.tier.RemoteReads - before.tier.RemoteReads
		c.BytesRemote = after.tier.BytesFetched - before.tier.BytesFetched
		c.BytesPushed = after.tier.BytesPushed - before.tier.BytesPushed
	} else {
		c.LocalReads = after.mgr.Reads - before.mgr.Reads
		c.BytesLocal = after.mgr.BytesRead - before.mgr.BytesRead
	}
	return c
}

// evalOne answers one evaluate spec. Loop goroutine, engine live.
func (s *Session) evalOne(spec EvalSpec) (float64, error) {
	if spec.Edge < 0 || spec.Edge >= len(s.t.Edges) {
		return 0, fmt.Errorf("service: edge %d out of range [0,%d)", spec.Edge, len(s.t.Edges))
	}
	edge := s.t.Edges[spec.Edge]
	if spec.Full {
		s.eng.InvalidateAll()
	}
	if spec.Length != nil {
		return s.eng.EvaluateAtLength(edge, *spec.Length)
	}
	lnl, err := s.eng.LogLikelihoodAt(edge)
	if err == nil {
		s.mu.Lock()
		s.lnl = lnl
		s.mu.Unlock()
	}
	return lnl, err
}

// Evaluate submits one request through the coalescing batcher.
func (s *Session) Evaluate(spec EvalSpec) (EvalReply, error) {
	return s.EvaluateTraced(spec, nil)
}

// EvaluateTraced is Evaluate under a server-side request span: the
// batch executor parents its engine/store spans beneath sp and fills
// the reply's trace id and cost ledger.
func (s *Session) EvaluateTraced(spec EvalSpec, sp *obs.Span) (EvalReply, error) {
	return s.EvaluateCtx(context.Background(), spec, sp)
}

// EvaluateCtx is EvaluateTraced under the request's context: when the
// server enforces a request deadline, a batch stuck behind a struggling
// remote tier stops blocking the HTTP handler at that deadline.
func (s *Session) EvaluateCtx(ctx context.Context, spec EvalSpec, sp *obs.Span) (EvalReply, error) {
	s.touch()
	return s.batcher.SubmitCtx(ctx, spec, sp)
}

// tierHealth reports the remote-tier condition for readiness and load
// shedding: whether the session runs a tiered store at all, whether its
// circuit breaker is open (degraded), and the spill journal's depth.
func (s *Session) tierHealth() (hasTier, degraded bool, journalDepth int64) {
	s.mu.Lock()
	tier := s.tier
	s.mu.Unlock()
	if tier == nil {
		return false, false, 0
	}
	st := tier.Stats()
	return true, st.Degraded, st.JournalDepth
}

// tierStore returns the live tiered store (nil for local sessions or
// while parked).
func (s *Session) tierStore() *ooc.TieredStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tier
}

// Newview forces a fresh full engine pass (invalidate + complete
// traversal) and returns the likelihood at the given edge.
func (s *Session) Newview(edgeIdx int) (EvalReply, error) {
	s.touch()
	var rep EvalReply
	err := s.do(func() error {
		if err := s.ensureLive(); err != nil {
			return err
		}
		lnl, err := s.evalOne(EvalSpec{Edge: edgeIdx, Full: true})
		if err != nil {
			return err
		}
		rep = EvalReply{Session: s.name, Edge: edgeIdx, LnL: lnl, LnLBits: FormatLnLBits(lnl), BatchSize: 1}
		return nil
	})
	return rep, err
}

// Optimize smooths every branch length on the session tree.
func (s *Session) Optimize(spec OptimizeSpec) (OptimizeReply, error) {
	s.touch()
	if spec.Passes <= 0 {
		spec.Passes = 2
	}
	if spec.Eps <= 0 {
		spec.Eps = 1e-3
	}
	var rep OptimizeReply
	err := s.do(func() error {
		if err := s.ensureLive(); err != nil {
			return err
		}
		lnl, err := search.New(s.eng, search.Options{}).SmoothBranches(spec.Passes, spec.Eps)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.lnl = lnl
		s.round++
		newick := tree.WriteNewick(s.t)
		s.mu.Unlock()
		rep = OptimizeReply{Session: s.name, LnL: lnl, LnLBits: FormatLnLBits(lnl), Newick: newick}
		return nil
	})
	return rep, err
}

// Tree returns the current Newick (loop goroutine: the tree mutates
// only there).
func (s *Session) Tree() (string, error) {
	var nwk string
	err := s.do(func() error {
		if err := s.ensureLive(); err != nil {
			return err
		}
		nwk = tree.WriteNewick(s.t)
		return nil
	})
	return nwk, err
}

// resizeTo is the governor's enforcement hook: clamp target to the
// session's legal range and resize the live pool. The watchdog is
// rebuilt so its regrow ceiling tracks the new grant instead of the
// stale one. Parked/in-core sessions ignore the call.
func (s *Session) resizeTo(grant int64) {
	_ = s.do(func() error {
		s.mu.Lock()
		active := s.state == stateActive
		vecBytes, n := s.vecBytes, s.nVecs
		s.mu.Unlock()
		if !active || s.mgr == nil || vecBytes == 0 {
			return nil
		}
		eff := grant
		if ov := s.mgr.MemOverheadBytes(); ov > 0 && ov < eff {
			eff -= ov
		}
		target := int(eff / vecBytes)
		if target < ooc.MinSlots {
			target = ooc.MinSlots
		}
		if target > n {
			target = n
		}
		if target == s.mgr.Slots() {
			s.mu.Lock()
			s.grant = grant
			s.mu.Unlock()
			return nil
		}
		if err := s.mgr.Resize(target); err != nil {
			return err
		}
		if s.srv.cfg.MemBudget > 0 {
			wd, err := ooc.NewWatchdog(s.mgr, ooc.WatchdogConfig{
				SoftBudget: s.srv.cfg.MemBudget,
				MaxSlots:   target,
			})
			if err == nil {
				s.mu.Lock()
				s.wd = wd
				s.mu.Unlock()
				s.eng.SetSafePoint(func() error { return wd.Check() })
			}
		}
		s.mu.Lock()
		s.grant = grant
		s.resizes++
		s.mu.Unlock()
		s.srv.noteResize()
		return nil
	})
}
