package service

// Network-fault tests for the service layer: client retry honoring
// Retry-After, the 503 error mapping, and the /readyz + load-shedding
// cycle across a remote-tier partition and recovery.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"oocphylo/internal/iosim"
	"oocphylo/internal/ooc"
	"oocphylo/internal/ooc/remote"
)

// TestClientRetriesIdempotentOn503 pins satellite 2: a 503 with a
// Retry-After hint is retried (for idempotent requests only), sleeping
// what the server asked for, inside a capped budget.
func TestClientRetriesIdempotentOn503(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorReply{Error: "shedding"})
			return
		}
		writeJSON(w, http.StatusOK, EvalReply{LnL: -42})
	}))
	defer hs.Close()

	c := NewClient(hs.URL)
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }

	rep, err := c.Evaluate("s", EvalSpec{Edge: 1})
	if err != nil {
		t.Fatalf("evaluate with retries: %v", err)
	}
	if rep.LnL != -42 {
		t.Errorf("LnL = %v", rep.LnL)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d requests, want 3 (1 + 2 retries)", calls.Load())
	}
	if len(slept) != 2 || slept[0] != time.Second || slept[1] != time.Second {
		t.Errorf("client slept %v, want [1s 1s] from Retry-After", slept)
	}
}

func TestClientRetryBudgetAndNonIdempotent(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorReply{Error: "down"})
	}))
	defer hs.Close()

	c := NewClient(hs.URL)
	c.sleep = func(time.Duration) {}

	// Idempotent: budget-bounded retries, then the error surfaces.
	if _, err := c.Evaluate("s", EvalSpec{Edge: 1}); err == nil {
		t.Fatal("persistent 503 must eventually fail")
	}
	if calls.Load() != int64(1+DefaultClientRetries) {
		t.Errorf("server saw %d requests, want %d", calls.Load(), 1+DefaultClientRetries)
	}

	// Mutating request: one attempt, no retries.
	calls.Store(0)
	if _, err := c.Park("s"); err == nil {
		t.Fatal("park against a 503 must fail")
	}
	if calls.Load() != 1 {
		t.Errorf("non-idempotent request retried: %d attempts", calls.Load())
	}

	// Budget zero disables retries outright.
	calls.Store(0)
	c.SetRetryBudget(0)
	c.Evaluate("s", EvalSpec{Edge: 1})
	if calls.Load() != 1 {
		t.Errorf("retry budget 0 still retried: %d attempts", calls.Load())
	}
}

// TestClientRetriesTransportFailure covers the connection-drop arm: no
// response at all is as retryable as a 503.
func TestClientRetriesTransportFailure(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close() // drop before any response bytes
			return
		}
		writeJSON(w, http.StatusOK, EvalReply{LnL: -7})
	}))
	defer hs.Close()

	c := NewClient(hs.URL)
	c.sleep = func(time.Duration) {}
	rep, err := c.Evaluate("s", EvalSpec{Edge: 0})
	if err != nil {
		t.Fatalf("evaluate across a dropped connection: %v", err)
	}
	if rep.LnL != -7 || calls.Load() != 2 {
		t.Errorf("LnL=%v after %d calls", rep.LnL, calls.Load())
	}
}

// TestWriteErrMapping pins the HTTP status mapping for the fault
// taxonomy: remote-tier conditions are 503 + Retry-After (retryable),
// a closed session is 409, everything else 400.
func TestWriteErrMapping(t *testing.T) {
	srv := newTestServer(t, ServerConfig{DataDir: t.TempDir(), RetryAfter: 3 * time.Second})
	cases := []struct {
		err        error
		status     int
		retryAfter string
	}{
		{fmt.Errorf("read: %w", ooc.ErrCircuitOpen), http.StatusServiceUnavailable, "3"},
		{fmt.Errorf("read: %w", ooc.ErrTransientIO), http.StatusServiceUnavailable, "3"},
		{fmt.Errorf("evaluate: %w", context.DeadlineExceeded), http.StatusServiceUnavailable, "3"},
		{ErrSessionClosed, http.StatusConflict, ""},
		{errors.New("bad spec"), http.StatusBadRequest, ""},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		srv.writeErr(rec, tc.err)
		if rec.Code != tc.status {
			t.Errorf("writeErr(%v) = HTTP %d, want %d", tc.err, rec.Code, tc.status)
		}
		if got := rec.Header().Get("Retry-After"); got != tc.retryAfter {
			t.Errorf("writeErr(%v) Retry-After = %q, want %q", tc.err, got, tc.retryAfter)
		}
		var rep errorReply
		if err := json.NewDecoder(rec.Body).Decode(&rep); err != nil || rep.Error == "" {
			t.Errorf("writeErr(%v) body not an error envelope: %v", tc.err, err)
		}
	}
}

// TestServiceReadyzDegradedCycle is the service-level partition arc:
// /readyz flips to 503 (naming the degraded session) while the remote
// tier's breaker is open, evaluates past the spill high-water mark are
// shed with Retry-After, /healthz stays 200 throughout (the process is
// alive, just degraded), and after the partition lifts /readyz's own
// probe nudge recloses the breaker — with the session answering
// bit-identically across the whole arc.
func TestServiceReadyzDegradedCycle(t *testing.T) {
	dir := t.TempDir()
	alnPath, vecBytes, need := writeTestAlignment(t, dir, 12, 300, 17)

	chaos := iosim.NewChaos(iosim.ChaosConfig{})
	chaos.Disable()
	rsrv, err := remote.NewServer(remote.ServerConfig{Chaos: chaos})
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()

	srv := newTestServer(t, ServerConfig{
		DataDir:        dir,
		StoreURL:       "remote://" + rsrv.Addr(),
		RemoteLanes:    2,
		CacheBytes:     4 * vecBytes, // tiny cache: evictions go remote
		RemoteDeadline: 100 * time.Millisecond,
		ShedDepth:      1,
		RetryAfter:     2 * time.Second,
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	cfg := baseSession("wan", alnPath)
	cfg.MemLimit = need / 2
	if cfg.MemLimit < int64(ooc.MinSlots)*vecBytes {
		t.Fatal("dataset too small to go out of core")
	}
	ses, err := srv.CreateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before, err := ses.Evaluate(EvalSpec{Edge: 1})
	if err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string, string) {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header.Get("Retry-After")
	}
	if code, body, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz while healthy: HTTP %d %s", code, body)
	}

	// Partition the remote tier and drive traffic until the breaker
	// opens and the spill journal starts absorbing dirty evictions.
	chaos.Enable()
	chaos.SetPartition(true)
	tier := ses.tierStore()
	if tier == nil {
		t.Fatal("remote session has no tier store")
	}
	deadline := time.Now().Add(30 * time.Second)
	for edge := 2; ; edge++ {
		if _, err := ses.Evaluate(EvalSpec{Edge: edge%8 + 1}); err != nil {
			t.Fatalf("evaluate during partition: %v", err)
		}
		_, degraded, depth := ses.tierHealth()
		if degraded && depth >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never degraded with journal pressure: %+v", tier.Stats())
		}
	}

	code, body, retryAfter := get("/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while partitioned: HTTP %d %s", code, body)
	}
	if !strings.Contains(body, "wan") {
		t.Errorf("/readyz body does not name the degraded session: %s", body)
	}
	if retryAfter != "2" {
		t.Errorf("/readyz Retry-After = %q, want 2", retryAfter)
	}
	if code, _, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz during partition: HTTP %d (liveness must not follow readiness)", code)
	}

	// Past the high-water mark, evaluates are shed with the same hint.
	resp, err := http.Post(hs.URL+"/v1/sessions/wan/evaluate", "application/json",
		strings.NewReader(`{"edge":1}`))
	if err != nil {
		t.Fatal(err)
	}
	shedBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("evaluate past shed mark: HTTP %d %s", resp.StatusCode, shedBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	// Lift the partition: /readyz polls nudge the breaker's half-open
	// probe until it recloses.
	chaos.Disable()
	recovered := false
	for wait := time.Now().Add(30 * time.Second); time.Now().Before(wait); {
		if code, _, _ := get("/readyz"); code == http.StatusOK {
			recovered = true
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("/readyz never recovered: %+v", tier.Stats())
	}
	after, err := ses.Evaluate(EvalSpec{Edge: 1})
	if err != nil {
		t.Fatal(err)
	}
	if after.LnLBits != before.LnLBits {
		t.Errorf("likelihood moved across the outage: %s -> %s", before.LnLBits, after.LnLBits)
	}
}
