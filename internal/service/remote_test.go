package service

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"oocphylo/internal/iosim"
	"oocphylo/internal/ooc"
	"oocphylo/internal/ooc/remote"
)

// TestServiceRemoteStoreParkRevive pins the tiered-storage revive
// story: a session whose vectors live on a (latency-injected, loopback)
// object store is parked, the daemon dies, the local cache tier is
// WIPED — and a fresh daemon over the same data directory still revives
// the session bit-identically, refetching the vectors from the remote
// tier under the park manifest's checksums.
func TestServiceRemoteStoreParkRevive(t *testing.T) {
	dir := t.TempDir()
	alnPath, vecBytes, need := writeTestAlignment(t, dir, 12, 300, 11)

	rsrv, err := remote.NewServer(remote.ServerConfig{
		Device: iosim.Device{Latency: time.Millisecond, Bandwidth: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()
	scfg := ServerConfig{
		DataDir:     dir,
		StoreURL:    "remote://" + rsrv.Addr(),
		RemoteLanes: 2,
	}

	srv1, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseSession("wan", alnPath)
	cfg.MemLimit = need / 2
	if cfg.MemLimit < int64(ooc.MinSlots)*vecBytes {
		t.Fatalf("dataset too small to go out of core")
	}
	ses, err := srv1.CreateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before, err := ses.Evaluate(EvalSpec{Edge: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.Close(); err != nil { // parks: flush + sync through the tier
		t.Fatalf("close: %v", err)
	}
	// Park pushed every vector remote.
	if got := rsrv.Size("wan.vec"); got <= 0 {
		t.Fatalf("remote object empty after park: %d bytes", got)
	}
	// The node loses its scratch disk: local cache tier gone. The
	// checkpoint, sidecar and alignment in DataDir survive.
	if err := os.RemoveAll(filepath.Join(dir, "wan.cache")); err != nil {
		t.Fatal(err)
	}

	srv2, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	infos := srv2.Sessions()
	if len(infos) != 1 || infos[0].State != "parked" {
		t.Fatalf("restarted daemon sessions = %+v", infos)
	}
	ses2, ok := srv2.Session("wan")
	if !ok {
		t.Fatal("session not adopted")
	}
	after, err := ses2.Evaluate(EvalSpec{Edge: 1})
	if err != nil {
		t.Fatalf("evaluate after cache loss: %v", err)
	}
	if after.LnLBits != before.LnLBits {
		t.Errorf("remote revive changed the likelihood: %s -> %s", before.LnLBits, after.LnLBits)
	}
}

// TestServiceRemoteStoreCacheBytes pins the cache sizing knob: a tiny
// CacheBytes budget forces eviction write-backs to the remote tier
// during the run, and the session still answers correctly.
func TestServiceRemoteStoreCacheBytes(t *testing.T) {
	dir := t.TempDir()
	alnPath, vecBytes, need := writeTestAlignment(t, dir, 12, 300, 19)

	rsrv, err := remote.NewServer(remote.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()

	// Local reference daemon answers the same session config.
	ref, err := NewServer(ServerConfig{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	srv, err := NewServer(ServerConfig{
		DataDir:    dir,
		StoreURL:   "remote://" + rsrv.Addr(),
		CacheBytes: 4 * vecBytes, // four cached vectors: constant churn
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := baseSession("tiny", alnPath)
	cfg.MemLimit = need / 2
	ses, err := srv.CreateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ses.Evaluate(EvalSpec{Edge: 0})
	if err != nil {
		t.Fatal(err)
	}
	rses, err := ref.CreateSession(baseSession("tiny", alnPath))
	if err != nil {
		t.Fatal(err)
	}
	want, err := rses.Evaluate(EvalSpec{Edge: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got.LnLBits != want.LnLBits {
		t.Errorf("starved cache changed the likelihood: %s != %s", got.LnLBits, want.LnLBits)
	}
}

// TestServiceRemoteStoreNamespace pins the two accepted endpoint forms:
// a bare remote://host:port maps a session to <name>.vec, and an
// endpoint with one namespace segment maps it to <ns>.<name>.vec so
// several daemons can share an object server. Anything deeper fails at
// NewServer, not at the first session create.
func TestServiceRemoteStoreNamespace(t *testing.T) {
	if got := sessionObjectURL("remote://h:1", "s"); got != "remote://h:1/s.vec" {
		t.Errorf("bare endpoint: got %q", got)
	}
	if got := sessionObjectURL("remote://h:1/", "s"); got != "remote://h:1/s.vec" {
		t.Errorf("trailing slash: got %q", got)
	}
	if got := sessionObjectURL("remote://h:1/ns", "s"); got != "remote://h:1/ns.s.vec" {
		t.Errorf("namespace endpoint: got %q", got)
	}
	if _, err := NewServer(ServerConfig{DataDir: t.TempDir(), StoreURL: "remote://h:1/a/b"}); err == nil {
		t.Error("nested store path accepted; want startup error")
	}

	dir := t.TempDir()
	alnPath, _, need := writeTestAlignment(t, dir, 12, 300, 13)
	rsrv, err := remote.NewServer(remote.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()
	srv, err := NewServer(ServerConfig{
		DataDir:  dir,
		StoreURL: "remote://" + rsrv.Addr() + "/plf",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cfg := baseSession("ns", alnPath)
	cfg.MemLimit = need / 2
	ses, err := srv.CreateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Evaluate(EvalSpec{Edge: 0}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rsrv.Size("plf.ns.vec"); got <= 0 {
		t.Fatalf("namespaced remote object empty after park: %d bytes", got)
	}
}
