package service

// Coalescing request batcher — the amortisation layer of the daemon.
// The paper evaluates one PLF stream per process; under concurrent
// clients the dominant per-request costs (P-matrix construction, the
// partial traversal toward the evaluation edge, OOC stage-ins) are
// SHARED between requests against the same session: once one request
// has paid for a traversal, every other request in the same engine pass
// rides on the now-valid ancestral vectors and the warm P cache. The
// batcher makes that sharing systematic: concurrent evaluates are
// collected into a batch (up to MaxBatch requests, or until MaxWait
// after the first), then executed as ONE engine pass on the session's
// loop goroutine. Results are bit-identical to running each request as
// its own fresh pass — vector reuse changes what is recomputed, never
// what is computed (the invariant every OOC layer of this repo is built
// on) — so coalescing is purely a throughput lever.
//
// Every request carries a timing ledger (queue wait, batch execution
// span, batch sequence number and size) so clients and the /debug
// endpoint can see what coalescing actually did to their latency.

import (
	"context"
	"errors"
	"time"

	"oocphylo/internal/obs"
)

// ErrSessionClosed is returned for requests that reach a session whose
// loop has been torn down (deleted, or the daemon is shutting down).
var ErrSessionClosed = errors.New("service: session closed")

// Defaults for BatcherConfig.
const (
	DefaultMaxBatch = 16
	DefaultMaxWait  = 2 * time.Millisecond
)

// BatcherConfig sizes the flush loop.
type BatcherConfig struct {
	// MaxBatch flushes a batch as soon as it holds this many requests
	// (default DefaultMaxBatch).
	MaxBatch int
	// MaxWait flushes whatever has been collected this long after the
	// FIRST request of the batch arrived (default DefaultMaxWait). The
	// wait bounds the latency a lone request pays for the chance of
	// being coalesced.
	MaxWait time.Duration
}

func (c *BatcherConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxWait <= 0 {
		c.MaxWait = DefaultMaxWait
	}
}

// evalJob is one enqueued evaluate request plus its reply path. span,
// when non-nil, is the server-side request span: the executor parents
// its engine/store spans under it and fills its cost ledger.
type evalJob struct {
	spec EvalSpec
	span *obs.Span
	enq  time.Time
	// res is filled by the executor; done is closed/sent once afterwards.
	res  EvalReply
	err  error
	done chan struct{}
}

// Batcher coalesces concurrent evaluate submissions into batches and
// hands each batch to exec as a unit. exec must fill every job's res/err
// (the batcher closes each job's done channel after exec returns).
type Batcher struct {
	cfg    BatcherConfig
	submit chan *evalJob
	exec   func([]*evalJob)
	quit   chan struct{}
	done   chan struct{}

	// seq numbers flushed batches, read by the executor's ledger.
	seq int64
}

// newBatcher starts the flush loop.
func newBatcher(cfg BatcherConfig, exec func([]*evalJob)) *Batcher {
	cfg.fill()
	b := &Batcher{
		cfg:    cfg,
		submit: make(chan *evalJob),
		exec:   exec,
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go b.loop()
	return b
}

// Submit enqueues one evaluate request and blocks until its batch has
// executed. Safe from any goroutine.
func (b *Batcher) Submit(spec EvalSpec) (EvalReply, error) {
	return b.SubmitTraced(spec, nil)
}

// SubmitTraced is Submit carrying the request's span (nil = untraced).
func (b *Batcher) SubmitTraced(spec EvalSpec, sp *obs.Span) (EvalReply, error) {
	return b.SubmitCtx(context.Background(), spec, sp)
}

// SubmitCtx is SubmitTraced under a request deadline: when ctx expires
// before the batch replies, the caller gets ctx.Err() immediately. The
// job itself still executes with its batch (evaluates are pure, so the
// orphaned result is simply dropped) — the deadline bounds the CALLER's
// wait, which is what an HTTP request timeout means.
func (b *Batcher) SubmitCtx(ctx context.Context, spec EvalSpec, sp *obs.Span) (EvalReply, error) {
	j := &evalJob{spec: spec, span: sp, enq: time.Now(), done: make(chan struct{})}
	select {
	case b.submit <- j:
	case <-b.quit:
		return EvalReply{}, ErrSessionClosed
	case <-ctx.Done():
		return EvalReply{}, ctx.Err()
	}
	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		return EvalReply{}, ctx.Err()
	}
}

// Close stops the flush loop after draining the batch in flight, if
// any. Submissions racing with Close get ErrSessionClosed.
func (b *Batcher) Close() {
	select {
	case <-b.quit: // already closed
		return
	default:
	}
	close(b.quit)
	<-b.done
}

// loop is the size + max-wait flush loop: block for the first request,
// then collect until the batch is full or the deadline set by that
// first arrival expires, then execute the batch as one engine pass.
// The submit channel is unbuffered, so a successful Submit send is a
// rendezvous: every accepted job is part of exactly one flushed batch
// and is always replied to.
func (b *Batcher) loop() {
	defer close(b.done)
	for {
		var first *evalJob
		select {
		case first = <-b.submit:
		case <-b.quit:
			return
		}
		batch := append(make([]*evalJob, 0, b.cfg.MaxBatch), first)
		timer := time.NewTimer(b.cfg.MaxWait)
	collect:
		for len(batch) < b.cfg.MaxBatch {
			select {
			case j := <-b.submit:
				batch = append(batch, j)
			case <-timer.C:
				break collect
			case <-b.quit:
				break collect
			}
		}
		timer.Stop()
		b.seq++
		b.flush(batch)
		select {
		case <-b.quit:
			return
		default:
		}
	}
}

// flush runs exec and releases every waiter, defaulting unset results
// to an executor-level failure so no Submit ever hangs.
func (b *Batcher) flush(batch []*evalJob) {
	b.exec(batch)
	for _, j := range batch {
		if j.res == (EvalReply{}) && j.err == nil {
			j.err = errors.New("service: batch executor dropped the request")
		}
		close(j.done)
	}
}
