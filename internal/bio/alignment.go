package bio

import (
	"errors"
	"fmt"
	"sort"
)

// Alignment is a multiple sequence alignment: one equal-length encoded
// sequence per taxon. Sequences hold state masks, not raw characters.
type Alignment struct {
	// Alphabet encodes/decodes the sequences.
	Alphabet *Alphabet
	// Names holds the taxon labels, in row order.
	Names []string
	// Seqs holds one encoded sequence per taxon; all rows share a length.
	Seqs [][]StateMask
}

// ErrEmptyAlignment is returned when an alignment has no taxa or no sites.
var ErrEmptyAlignment = errors.New("bio: empty alignment")

// NewAlignment creates an empty alignment over the given alphabet.
func NewAlignment(a *Alphabet) *Alignment {
	return &Alignment{Alphabet: a}
}

// NumTaxa returns the number of sequences.
func (m *Alignment) NumTaxa() int { return len(m.Seqs) }

// NumSites returns the alignment length (0 when empty).
func (m *Alignment) NumSites() int {
	if len(m.Seqs) == 0 {
		return 0
	}
	return len(m.Seqs[0])
}

// AddEncoded appends a pre-encoded sequence.
func (m *Alignment) AddEncoded(name string, seq []StateMask) error {
	if len(m.Seqs) > 0 && len(seq) != m.NumSites() {
		return fmt.Errorf("bio: sequence %q has %d sites, alignment has %d", name, len(seq), m.NumSites())
	}
	m.Names = append(m.Names, name)
	m.Seqs = append(m.Seqs, seq)
	return nil
}

// AddString encodes and appends a raw character sequence.
func (m *Alignment) AddString(name, seq string) error {
	enc := make([]StateMask, len(seq))
	for i := 0; i < len(seq); i++ {
		mask, err := m.Alphabet.Mask(seq[i])
		if err != nil {
			return fmt.Errorf("bio: sequence %q, site %d: %w", name, i+1, err)
		}
		enc[i] = mask
	}
	return m.AddEncoded(name, enc)
}

// String returns sequence row i decoded back to characters.
func (m *Alignment) StringSeq(i int) string {
	seq := m.Seqs[i]
	buf := make([]byte, len(seq))
	for j, mask := range seq {
		buf[j] = m.Alphabet.Char(mask)
	}
	return string(buf)
}

// Validate checks structural invariants: non-empty, consistent lengths,
// unique names and no zero masks.
func (m *Alignment) Validate() error {
	if m.NumTaxa() == 0 || m.NumSites() == 0 {
		return ErrEmptyAlignment
	}
	if len(m.Names) != len(m.Seqs) {
		return fmt.Errorf("bio: %d names for %d sequences", len(m.Names), len(m.Seqs))
	}
	seen := make(map[string]bool, len(m.Names))
	for i, name := range m.Names {
		if name == "" {
			return fmt.Errorf("bio: sequence %d has an empty name", i)
		}
		if seen[name] {
			return fmt.Errorf("bio: duplicate taxon name %q", name)
		}
		seen[name] = true
		if len(m.Seqs[i]) != m.NumSites() {
			return fmt.Errorf("bio: sequence %q has %d sites, expected %d", name, len(m.Seqs[i]), m.NumSites())
		}
		for j, mask := range m.Seqs[i] {
			if mask == 0 || mask > m.Alphabet.AllStates() {
				return fmt.Errorf("bio: sequence %q, site %d: invalid mask %#x", name, j+1, mask)
			}
		}
	}
	return nil
}

// TaxonIndex returns the row of the named taxon, or -1.
func (m *Alignment) TaxonIndex(name string) int {
	for i, n := range m.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Patterns is a site-pattern-compressed view of an alignment: identical
// columns are collapsed into a single pattern with an integer weight.
// The likelihood of an alignment is the weighted sum of per-pattern
// log-likelihoods, so the engine operates exclusively on Patterns.
type Patterns struct {
	// Alphabet is the source alignment's alphabet.
	Alphabet *Alphabet
	// Names holds the taxon labels, row order preserved.
	Names []string
	// Columns holds, per taxon, one mask per unique site pattern.
	Columns [][]StateMask
	// Weights holds the multiplicity of each pattern; its sum equals the
	// original alignment length.
	Weights []int
}

// NumTaxa returns the number of sequences.
func (p *Patterns) NumTaxa() int { return len(p.Columns) }

// NumPatterns returns the number of unique site patterns.
func (p *Patterns) NumPatterns() int { return len(p.Weights) }

// TotalSites returns the original (uncompressed) alignment length.
func (p *Patterns) TotalSites() int {
	s := 0
	for _, w := range p.Weights {
		s += w
	}
	return s
}

// Compress collapses identical alignment columns into weighted patterns.
// Patterns are emitted in a deterministic order (lexicographic over the
// column masks), so identical alignments compress identically regardless
// of map iteration order.
func Compress(m *Alignment) (*Patterns, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n, s := m.NumTaxa(), m.NumSites()
	type patInfo struct {
		firstCol int
		weight   int
	}
	index := make(map[string]*patInfo, s)
	key := make([]byte, n*4)
	for col := 0; col < s; col++ {
		for row := 0; row < n; row++ {
			v := m.Seqs[row][col]
			key[row*4+0] = byte(v)
			key[row*4+1] = byte(v >> 8)
			key[row*4+2] = byte(v >> 16)
			key[row*4+3] = byte(v >> 24)
		}
		k := string(key)
		if pi, ok := index[k]; ok {
			pi.weight++
			continue
		}
		index[k] = &patInfo{firstCol: col, weight: 1}
	}
	// Deterministic order: by column content via the first column index
	// after sorting on the key bytes.
	keys := make([]string, 0, len(index))
	for k := range index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	p := &Patterns{
		Alphabet: m.Alphabet,
		Names:    append([]string(nil), m.Names...),
		Columns:  make([][]StateMask, n),
		Weights:  make([]int, len(keys)),
	}
	for row := 0; row < n; row++ {
		p.Columns[row] = make([]StateMask, len(keys))
	}
	for j, k := range keys {
		pi := index[k]
		p.Weights[j] = pi.weight
		for row := 0; row < n; row++ {
			p.Columns[row][j] = m.Seqs[row][pi.firstCol]
		}
	}
	return p, nil
}

// Uncompress expands the patterns back to a full alignment with each
// pattern repeated by its weight (column order is by pattern, not the
// original site order, which the likelihood does not depend on).
func (p *Patterns) Uncompress() *Alignment {
	m := NewAlignment(p.Alphabet)
	for row := range p.Columns {
		seq := make([]StateMask, 0, p.TotalSites())
		for j, w := range p.Weights {
			for k := 0; k < w; k++ {
				seq = append(seq, p.Columns[row][j])
			}
		}
		m.Names = append(m.Names, p.Names[row])
		m.Seqs = append(m.Seqs, seq)
	}
	return m
}

// BaseFrequencies returns the empirical state frequencies of the
// patterns, counting an ambiguous character as a fractional observation
// split uniformly over its states. The result sums to one.
func (p *Patterns) BaseFrequencies() []float64 {
	k := p.Alphabet.States
	freqs := make([]float64, k)
	total := 0.0
	for row := range p.Columns {
		for j, mask := range p.Columns[row] {
			w := float64(p.Weights[j])
			bits := 0
			for s := 0; s < k; s++ {
				if mask&(1<<uint(s)) != 0 {
					bits++
				}
			}
			if bits == k {
				continue // gaps carry no information
			}
			share := w / float64(bits)
			for s := 0; s < k; s++ {
				if mask&(1<<uint(s)) != 0 {
					freqs[s] += share
					total += share
				}
			}
		}
	}
	if total == 0 {
		// Degenerate all-gap data: fall back to uniform.
		for s := range freqs {
			freqs[s] = 1 / float64(k)
		}
		return freqs
	}
	for s := range freqs {
		freqs[s] /= total
	}
	return freqs
}
