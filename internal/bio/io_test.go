package bio

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadFASTA(t *testing.T) {
	in := `>t1 some description
ACGT
ACGT
>t2
acgtacgt

>t3
NNNN----
`
	m, err := ReadFASTA(strings.NewReader(in), NewDNAAlphabet())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTaxa() != 3 || m.NumSites() != 8 {
		t.Fatalf("dims = %dx%d", m.NumTaxa(), m.NumSites())
	}
	if m.Names[0] != "t1" || m.Names[1] != "t2" {
		t.Errorf("names = %v", m.Names)
	}
	if m.StringSeq(0) != "ACGTACGT" {
		t.Errorf("seq0 = %q", m.StringSeq(0))
	}
	if m.StringSeq(1) != "ACGTACGT" {
		t.Errorf("lowercase not normalised: %q", m.StringSeq(1))
	}
}

func TestReadFASTAErrors(t *testing.T) {
	cases := []string{
		"ACGT\n",             // data before header
		">a\n>b\nACGT\n",     // record without data
		">\nACGT\n",          // empty header
		">a\nAC\n>b\nACGT\n", // ragged
		">a\nAZGT\n",         // bad character for DNA
	}
	for _, in := range cases {
		if _, err := ReadFASTA(strings.NewReader(in), NewDNAAlphabet()); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestFASTARoundTrip(t *testing.T) {
	m := NewAlignment(NewDNAAlphabet())
	_ = m.AddString("alpha", strings.Repeat("ACGTRYN-", 30))
	_ = m.AddString("beta", strings.Repeat("TTTTACG-", 30))
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf, NewDNAAlphabet())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTaxa() != 2 || back.NumSites() != 240 {
		t.Fatalf("dims = %dx%d", back.NumTaxa(), back.NumSites())
	}
	for i := range m.Seqs {
		if back.StringSeq(i) != m.StringSeq(i) {
			t.Errorf("row %d differs after round trip", i)
		}
	}
}

func TestReadPhylipSequential(t *testing.T) {
	in := `4 12
taxon_one   ACGTACGTACGT
taxon_two   TTTTACGTACGA
taxon_three ACGAACGAACGA
taxon_four  ACG-ACG-ACG-
`
	m, err := ReadPhylip(strings.NewReader(in), NewDNAAlphabet())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTaxa() != 4 || m.NumSites() != 12 {
		t.Fatalf("dims = %dx%d", m.NumTaxa(), m.NumSites())
	}
	if m.Names[2] != "taxon_three" {
		t.Errorf("names = %v", m.Names)
	}
	if m.StringSeq(3) != "ACG-ACG-ACG-" {
		t.Errorf("seq3 = %q", m.StringSeq(3))
	}
}

func TestReadPhylipMultiline(t *testing.T) {
	in := `2 8
a ACGT
ACGT
b TTTT
ACGA
`
	m, err := ReadPhylip(strings.NewReader(in), NewDNAAlphabet())
	if err != nil {
		t.Fatal(err)
	}
	if m.StringSeq(0) != "ACGTACGT" || m.StringSeq(1) != "TTTTACGA" {
		t.Errorf("multi-line parse wrong: %q %q", m.StringSeq(0), m.StringSeq(1))
	}
}

func TestReadPhylipSpacedSequences(t *testing.T) {
	in := "1 12\nx ACGT ACGT ACGT\n"
	m, err := ReadPhylip(strings.NewReader(in), NewDNAAlphabet())
	if err != nil {
		t.Fatal(err)
	}
	if m.StringSeq(0) != "ACGTACGTACGT" {
		t.Errorf("spaced sequence parse wrong: %q", m.StringSeq(0))
	}
}

func TestReadPhylipErrors(t *testing.T) {
	cases := []string{
		"",                      // no header
		"x y\nfoo ACGT\n",       // bad header numbers
		"0 4\n",                 // zero taxa
		"2 4\na ACGT\n",         // truncated
		"1 4\na ACGTT\n",        // declared length exceeded mid-token is fine, but 5 != 4
		"1 4\na AC\n",           // EOF before full length
		"2 4\na ACGT\na ACGT\n", // duplicate names
	}
	for _, in := range cases {
		if _, err := ReadPhylip(strings.NewReader(in), NewDNAAlphabet()); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestPhylipRoundTrip(t *testing.T) {
	m := NewAlignment(NewDNAAlphabet())
	_ = m.AddString("taxon_with_long_name", "ACGTRY")
	_ = m.AddString("b", "NNNNNN")
	var buf bytes.Buffer
	if err := WritePhylip(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPhylip(&buf, NewDNAAlphabet())
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Seqs {
		if back.Names[i] != m.Names[i] || back.StringSeq(i) != m.StringSeq(i) {
			t.Errorf("row %d differs after round trip", i)
		}
	}
}

func TestReadFASTAProtein(t *testing.T) {
	in := ">p1\nARNDCQEGHILKMFPSTWYV\n>p2\nXXXXXXXXXXXXXXXXXXXX\n"
	m, err := ReadFASTA(strings.NewReader(in), NewAAAlphabet())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSites() != 20 {
		t.Fatalf("sites = %d", m.NumSites())
	}
	if m.StringSeq(0) != "ARNDCQEGHILKMFPSTWYV" {
		t.Errorf("protein round trip failed: %q", m.StringSeq(0))
	}
}
