package bio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAlignment(t *testing.T, rows map[string]string) *Alignment {
	t.Helper()
	m := NewAlignment(NewDNAAlphabet())
	// Deterministic insertion order.
	names := []string{"t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8"}
	for _, n := range names {
		if s, ok := rows[n]; ok {
			if err := m.AddString(n, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m
}

func TestAlignmentBasics(t *testing.T) {
	m := mustAlignment(t, map[string]string{
		"t1": "ACGT",
		"t2": "ACGA",
	})
	if m.NumTaxa() != 2 || m.NumSites() != 4 {
		t.Fatalf("dims = %dx%d", m.NumTaxa(), m.NumSites())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.TaxonIndex("t2") != 1 || m.TaxonIndex("nope") != -1 {
		t.Error("TaxonIndex broken")
	}
	if m.StringSeq(0) != "ACGT" {
		t.Errorf("StringSeq = %q", m.StringSeq(0))
	}
}

func TestAlignmentRejectsRaggedRows(t *testing.T) {
	m := NewAlignment(NewDNAAlphabet())
	if err := m.AddString("a", "ACGT"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddString("b", "ACG"); err == nil {
		t.Error("ragged row must be rejected")
	}
}

func TestAlignmentRejectsBadChars(t *testing.T) {
	m := NewAlignment(NewDNAAlphabet())
	if err := m.AddString("a", "AC!T"); err == nil {
		t.Error("invalid character must be rejected")
	}
}

func TestValidateCatchesDuplicatesAndEmpties(t *testing.T) {
	m := NewAlignment(NewDNAAlphabet())
	if err := m.Validate(); err == nil {
		t.Error("empty alignment must fail validation")
	}
	_ = m.AddString("a", "ACGT")
	_ = m.AddString("a", "ACGT")
	if err := m.Validate(); err == nil {
		t.Error("duplicate names must fail validation")
	}
	m2 := NewAlignment(NewDNAAlphabet())
	_ = m2.AddEncoded("", []StateMask{1, 2})
	if err := m2.Validate(); err == nil {
		t.Error("empty name must fail validation")
	}
	m3 := NewAlignment(NewDNAAlphabet())
	_ = m3.AddEncoded("x", []StateMask{0, 1})
	if err := m3.Validate(); err == nil {
		t.Error("zero mask must fail validation")
	}
}

func TestCompressCollapsesAndWeights(t *testing.T) {
	m := mustAlignment(t, map[string]string{
		"t1": "AAACGA",
		"t2": "CCCGTC",
		"t3": "GGGTAG",
	})
	// Columns: (A,C,G) x3, (C,G,T), (G,T,A), (A,C,G) -> 3 unique patterns,
	// one with weight 4.
	p, err := Compress(m)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPatterns() != 3 {
		t.Fatalf("patterns = %d, want 3", p.NumPatterns())
	}
	if p.TotalSites() != 6 {
		t.Fatalf("total sites = %d", p.TotalSites())
	}
	maxW := 0
	for _, w := range p.Weights {
		if w > maxW {
			maxW = w
		}
	}
	if maxW != 4 {
		t.Errorf("dominant pattern weight = %d, want 4", maxW)
	}
}

func TestCompressDeterministic(t *testing.T) {
	m := mustAlignment(t, map[string]string{
		"t1": "ACGTACGTNN--RY",
		"t2": "TTTTACGAACGTAC",
	})
	p1, err := Compress(m)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compress(m)
	if err != nil {
		t.Fatal(err)
	}
	if p1.NumPatterns() != p2.NumPatterns() {
		t.Fatal("pattern count differs between runs")
	}
	for j := range p1.Weights {
		if p1.Weights[j] != p2.Weights[j] {
			t.Fatal("weights differ between runs")
		}
		for row := range p1.Columns {
			if p1.Columns[row][j] != p2.Columns[row][j] {
				t.Fatal("columns differ between runs")
			}
		}
	}
}

func TestCompressUncompressRoundTripProperty(t *testing.T) {
	letters := []byte("ACGTRYSWKMBDHVN-")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		s := 1 + r.Intn(40)
		m := NewAlignment(NewDNAAlphabet())
		for i := 0; i < n; i++ {
			buf := make([]byte, s)
			for j := range buf {
				buf[j] = letters[r.Intn(len(letters))]
			}
			if err := m.AddString(string(rune('a'+i))+"x", string(buf)); err != nil {
				return false
			}
		}
		p, err := Compress(m)
		if err != nil {
			return false
		}
		if p.TotalSites() != s {
			return false
		}
		// Round trip: compressing the uncompressed patterns must yield an
		// identical pattern set.
		back, err := Compress(p.Uncompress())
		if err != nil {
			return false
		}
		if back.NumPatterns() != p.NumPatterns() {
			return false
		}
		for j := range p.Weights {
			if back.Weights[j] != p.Weights[j] {
				return false
			}
			for row := range p.Columns {
				if back.Columns[row][j] != p.Columns[row][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBaseFrequencies(t *testing.T) {
	m := mustAlignment(t, map[string]string{
		"t1": "AACC",
		"t2": "AACC",
	})
	p, err := Compress(m)
	if err != nil {
		t.Fatal(err)
	}
	f := p.BaseFrequencies()
	if math.Abs(f[0]-0.5) > 1e-12 || math.Abs(f[1]-0.5) > 1e-12 || f[2] != 0 || f[3] != 0 {
		t.Errorf("frequencies = %v", f)
	}
	sum := 0.0
	for _, x := range f {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("frequencies sum to %v", sum)
	}
}

func TestBaseFrequenciesIgnoreGapsSplitAmbiguity(t *testing.T) {
	m := mustAlignment(t, map[string]string{
		"t1": "R-",
		"t2": "--",
	})
	p, err := Compress(m)
	if err != nil {
		t.Fatal(err)
	}
	f := p.BaseFrequencies()
	// Only the R counts: half A, half G.
	if math.Abs(f[0]-0.5) > 1e-12 || math.Abs(f[2]-0.5) > 1e-12 {
		t.Errorf("frequencies = %v", f)
	}
}

func TestBaseFrequenciesAllGaps(t *testing.T) {
	m := mustAlignment(t, map[string]string{"t1": "--", "t2": "--"})
	p, err := Compress(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range p.BaseFrequencies() {
		if math.Abs(x-0.25) > 1e-12 {
			t.Errorf("all-gap data should give uniform frequencies, got %v", x)
		}
	}
}
