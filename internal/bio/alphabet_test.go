package bio

import (
	"math/bits"
	"testing"
)

func TestDNAAlphabetBasics(t *testing.T) {
	a := NewDNAAlphabet()
	if a.States != 4 {
		t.Fatalf("DNA states = %d", a.States)
	}
	if a.AllStates() != 0xF {
		t.Fatalf("AllStates = %#x", a.AllStates())
	}
	cases := map[byte]StateMask{
		'A': 1, 'C': 2, 'G': 4, 'T': 8, 'U': 8,
		'R': 5, 'Y': 10, 'S': 6, 'W': 9, 'K': 12, 'M': 3,
		'B': 14, 'D': 13, 'H': 11, 'V': 7,
		'N': 15, '-': 15, '?': 15, 'X': 15,
	}
	for c, want := range cases {
		got, err := a.Mask(c)
		if err != nil {
			t.Fatalf("Mask(%q): %v", c, err)
		}
		if got != want {
			t.Errorf("Mask(%q) = %#x, want %#x", c, got, want)
		}
		lc := c + 'a' - 'A'
		if c >= 'A' && c <= 'Z' {
			if lg, err := a.Mask(lc); err != nil || lg != want {
				t.Errorf("lowercase Mask(%q) = %#x, %v", lc, lg, err)
			}
		}
	}
	if _, err := a.Mask('!'); err == nil {
		t.Error("invalid character must error")
	}
	if _, err := a.Mask('E'); err == nil {
		t.Error("'E' is not a nucleotide code")
	}
}

func TestDNACharRoundTrip(t *testing.T) {
	a := NewDNAAlphabet()
	for _, c := range []byte("ACGTRYSWKMBDHV") {
		m, err := a.Mask(c)
		if err != nil {
			t.Fatal(err)
		}
		if got := a.Char(m); got != c {
			t.Errorf("Char(Mask(%q)) = %q", c, got)
		}
	}
	// Fully ambiguous renders as gap.
	if a.Char(a.AllStates()) != '-' {
		t.Error("full mask should render '-'")
	}
}

func TestAAAlphabetBasics(t *testing.T) {
	a := NewAAAlphabet()
	if a.States != 20 {
		t.Fatalf("AA states = %d", a.States)
	}
	for i := 0; i < 20; i++ {
		c := aaOrder[i]
		m, err := a.Mask(c)
		if err != nil {
			t.Fatalf("Mask(%q): %v", c, err)
		}
		if m != 1<<uint(i) {
			t.Errorf("Mask(%q) = %#x, want bit %d", c, m, i)
		}
		if a.SingleState(m) != i {
			t.Errorf("SingleState(%#x) = %d, want %d", m, a.SingleState(m), i)
		}
		if a.Char(m) != c {
			t.Errorf("Char round trip failed for %q", c)
		}
	}
	// Ambiguity codes.
	b, _ := a.Mask('B')
	if bits.OnesCount32(uint32(b)) != 2 {
		t.Errorf("B should cover two states, mask %#x", b)
	}
	x, _ := a.Mask('X')
	if x != a.AllStates() {
		t.Errorf("X should be fully ambiguous, mask %#x", x)
	}
	gap, _ := a.Mask('-')
	if gap != a.AllStates() {
		t.Error("gap should be fully ambiguous")
	}
	if _, err := a.Mask('1'); err == nil {
		t.Error("digit must be invalid")
	}
}

func TestSingleStateAndAmbiguity(t *testing.T) {
	a := NewDNAAlphabet()
	if a.SingleState(0) != -1 {
		t.Error("zero mask has no single state")
	}
	if a.SingleState(3) != -1 {
		t.Error("mask 3 is ambiguous")
	}
	if a.SingleState(4) != 2 {
		t.Error("mask 4 is state 2 (G)")
	}
	if a.IsAmbiguous(4) {
		t.Error("G is not ambiguous")
	}
	if !a.IsAmbiguous(5) {
		t.Error("R is ambiguous")
	}
}

func TestNewAlphabetDispatch(t *testing.T) {
	if NewAlphabet(DNA).States != 4 || NewAlphabet(AA).States != 20 {
		t.Error("NewAlphabet dispatch broken")
	}
	if DNA.String() != "DNA" || AA.String() != "AA" {
		t.Error("DataType.String broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown data type must panic")
		}
	}()
	NewAlphabet(DataType(99))
}
