package bio_test

import (
	"fmt"
	"strings"

	"oocphylo/internal/bio"
)

func ExampleCompress() {
	aln := bio.NewAlignment(bio.NewDNAAlphabet())
	// Repeated columns collapse into weighted patterns: the likelihood
	// engine then scores each unique column once.
	_ = aln.AddString("a", "AAAAGGGGCC")
	_ = aln.AddString("b", "AAAAGGGGCC")
	_ = aln.AddString("c", "AAAATTTTGG")
	pats, err := bio.Compress(aln)
	if err != nil {
		panic(err)
	}
	fmt.Println("sites:", pats.TotalSites())
	fmt.Println("unique patterns:", pats.NumPatterns())
	fmt.Println("weights:", pats.Weights)
	// Output:
	// sites: 10
	// unique patterns: 3
	// weights: [4 2 4]
}

func ExampleReadFASTA() {
	in := `>seq_one
ACGTRYN-
>seq_two
acgtacgt
`
	aln, err := bio.ReadFASTA(strings.NewReader(in), bio.NewDNAAlphabet())
	if err != nil {
		panic(err)
	}
	fmt.Println(aln.NumTaxa(), "taxa,", aln.NumSites(), "sites")
	// N and '-' both mean "any state" (RAxML semantics), so the decoder
	// renders both as the gap character.
	fmt.Println(aln.Names[0], "=", aln.StringSeq(0))
	fmt.Println(aln.Names[1], "=", aln.StringSeq(1))
	// Output:
	// 2 taxa, 8 sites
	// seq_one = ACGTRY--
	// seq_two = ACGTACGT
}

func ExampleAlphabet_Mask() {
	a := bio.NewDNAAlphabet()
	for _, c := range []byte{'A', 'R', 'N'} {
		m, _ := a.Mask(c)
		fmt.Printf("%c -> %04b (ambiguous: %v)\n", c, m, a.IsAmbiguous(m))
	}
	// Output:
	// A -> 0001 (ambiguous: false)
	// R -> 0101 (ambiguous: true)
	// N -> 1111 (ambiguous: true)
}
