// Package bio provides the molecular-sequence substrate of the
// likelihood engine: character alphabets with IUPAC ambiguity encoding,
// multiple-sequence-alignment containers, FASTA and relaxed-PHYLIP
// readers/writers, and site-pattern compression.
//
// Characters are stored as bit masks (one bit per state), the encoding
// RAxML uses for its tip vectors: an ambiguous character is the OR of
// the states it may represent, and a gap or unknown character has every
// state bit set.
package bio

import (
	"fmt"
	"strings"
)

// StateMask is a set of character states encoded one bit per state.
// For DNA the low four bits mean A, C, G, T; for amino-acid data the low
// twenty bits follow the alphabetical one-letter order ARNDCQEGHILKMFPSTWYV.
type StateMask uint32

// DataType identifies the kind of molecular data an Alphabet models.
type DataType int

const (
	// DNA is four-state nucleotide data with IUPAC ambiguity codes.
	DNA DataType = iota
	// AA is twenty-state amino-acid data.
	AA
)

// Alphabet translates between sequence characters and state masks.
type Alphabet struct {
	// Type is the molecular data type.
	Type DataType
	// States is the number of character states (4 for DNA, 20 for AA).
	States int
	// letters holds the canonical unambiguous characters by state index.
	letters []byte
	// toMask maps an upper-case byte to its mask; zero means invalid.
	toMask [256]StateMask
}

// AllStates returns the mask with every state bit set (gap / unknown).
func (a *Alphabet) AllStates() StateMask {
	return StateMask(1)<<uint(a.States) - 1
}

// Mask returns the state mask for character c, accepting lower- and
// upper-case input. Unknown characters return an error.
func (a *Alphabet) Mask(c byte) (StateMask, error) {
	m := a.toMask[c]
	if m == 0 {
		return 0, fmt.Errorf("bio: character %q is not valid for %v data", c, a.Type)
	}
	return m, nil
}

// Char returns a printable character for mask m: the canonical letter
// for single states, the IUPAC code where one exists, and '?' otherwise.
func (a *Alphabet) Char(m StateMask) byte {
	if m == a.AllStates() {
		return '-'
	}
	// Exact single state.
	if m != 0 && m&(m-1) == 0 {
		for i := 0; i < a.States; i++ {
			if m == 1<<uint(i) {
				return a.letters[i]
			}
		}
	}
	if a.Type == DNA {
		for c, mm := range dnaCodes {
			if mm == m {
				return c
			}
		}
	}
	if a.Type == AA {
		for c, mm := range aaAmbiguous {
			if mm == m {
				return c
			}
		}
	}
	return '?'
}

// IsAmbiguous reports whether m represents more than one state.
func (a *Alphabet) IsAmbiguous(m StateMask) bool {
	return m&(m-1) != 0
}

// SingleState returns the state index for an unambiguous mask and -1 for
// an ambiguous one.
func (a *Alphabet) SingleState(m StateMask) int {
	if m == 0 || m&(m-1) != 0 {
		return -1
	}
	for i := 0; i < a.States; i++ {
		if m == 1<<uint(i) {
			return i
		}
	}
	return -1
}

func (t DataType) String() string {
	switch t {
	case DNA:
		return "DNA"
	case AA:
		return "AA"
	default:
		return fmt.Sprintf("DataType(%d)", int(t))
	}
}

// DNA state bits in alphabetical order.
const (
	maskA StateMask = 1 << iota
	maskC
	maskG
	maskT
)

// dnaCodes lists the IUPAC nucleotide ambiguity characters.
var dnaCodes = map[byte]StateMask{
	'A': maskA,
	'C': maskC,
	'G': maskG,
	'T': maskT,
	'U': maskT,
	'R': maskA | maskG,
	'Y': maskC | maskT,
	'S': maskC | maskG,
	'W': maskA | maskT,
	'K': maskG | maskT,
	'M': maskA | maskC,
	'B': maskC | maskG | maskT,
	'D': maskA | maskG | maskT,
	'H': maskA | maskC | maskT,
	'V': maskA | maskC | maskG,
	'N': maskA | maskC | maskG | maskT,
	'X': maskA | maskC | maskG | maskT,
	'?': maskA | maskC | maskG | maskT,
	'-': maskA | maskC | maskG | maskT,
	'O': maskA | maskC | maskG | maskT,
}

// aaOrder is the canonical one-letter amino-acid order used by PAML,
// PHYLIP and RAxML: Ala Arg Asn Asp Cys Gln Glu Gly His Ile Leu Lys Met
// Phe Pro Ser Thr Trp Tyr Val.
const aaOrder = "ARNDCQEGHILKMFPSTWYV"

// aaAmbiguous lists the amino-acid ambiguity characters.
var aaAmbiguous map[byte]StateMask

// NewDNAAlphabet returns the nucleotide alphabet with IUPAC ambiguity
// support; gaps and unknowns map to the fully ambiguous mask.
func NewDNAAlphabet() *Alphabet {
	a := &Alphabet{Type: DNA, States: 4, letters: []byte("ACGT")}
	for c, m := range dnaCodes {
		a.toMask[c] = m
		a.toMask[lower(c)] = m
	}
	return a
}

// NewAAAlphabet returns the twenty-state amino-acid alphabet. B, Z and J
// map to their standard two-state ambiguity sets; X, ?, -, * and U map
// to the fully ambiguous mask.
func NewAAAlphabet() *Alphabet {
	a := &Alphabet{Type: AA, States: 20, letters: []byte(aaOrder)}
	for i := 0; i < 20; i++ {
		c := aaOrder[i]
		a.toMask[c] = 1 << uint(i)
		a.toMask[lower(c)] = 1 << uint(i)
	}
	for c, m := range aaAmbiguous {
		a.toMask[c] = m
		a.toMask[lower(c)] = m
	}
	return a
}

// NewAlphabet returns the alphabet for the given data type.
func NewAlphabet(t DataType) *Alphabet {
	switch t {
	case DNA:
		return NewDNAAlphabet()
	case AA:
		return NewAAAlphabet()
	default:
		panic(fmt.Sprintf("bio: unknown data type %d", int(t)))
	}
}

func lower(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

func init() {
	idx := func(c byte) StateMask {
		return 1 << uint(strings.IndexByte(aaOrder, c))
	}
	all := StateMask(1)<<20 - 1
	aaAmbiguous = map[byte]StateMask{
		'B': idx('D') | idx('N'),
		'Z': idx('E') | idx('Q'),
		'J': idx('I') | idx('L'),
		'X': all,
		'?': all,
		'-': all,
		'*': all,
		'U': all,
	}
}
