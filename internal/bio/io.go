package bio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadFASTA parses a FASTA stream into an alignment over alphabet a.
// Header lines start with '>'; the taxon name is the first whitespace-
// delimited token after it. Sequence data may span multiple lines.
func ReadFASTA(r io.Reader, a *Alphabet) (*Alignment, error) {
	m := NewAlignment(a)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var (
		name string
		seq  strings.Builder
		line int
	)
	flush := func() error {
		if name == "" {
			return nil
		}
		if seq.Len() == 0 {
			return fmt.Errorf("bio: fasta record %q has no sequence data", name)
		}
		if err := m.AddString(name, seq.String()); err != nil {
			return err
		}
		name = ""
		seq.Reset()
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			fields := strings.Fields(text[1:])
			if len(fields) == 0 {
				return nil, fmt.Errorf("bio: fasta line %d: empty header", line)
			}
			name = fields[0]
			continue
		}
		if name == "" {
			return nil, fmt.Errorf("bio: fasta line %d: sequence data before first header", line)
		}
		seq.WriteString(text)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bio: reading fasta: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteFASTA writes the alignment as FASTA with 70-column sequence lines.
func WriteFASTA(w io.Writer, m *Alignment) error {
	bw := bufio.NewWriter(w)
	for i := range m.Seqs {
		if _, err := fmt.Fprintf(bw, ">%s\n", m.Names[i]); err != nil {
			return err
		}
		s := m.StringSeq(i)
		for off := 0; off < len(s); off += 70 {
			end := off + 70
			if end > len(s) {
				end = len(s)
			}
			if _, err := fmt.Fprintln(bw, s[off:end]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadPhylip parses a relaxed sequential PHYLIP stream: a header line
// with the taxon and site counts, then one record per taxon whose name
// is the first whitespace-delimited token (no 10-character limit) and
// whose sequence may continue on subsequent lines until the declared
// length is reached. Interleaved files whose first block carries full-
// length rows also parse.
func ReadPhylip(r io.Reader, a *Alphabet) (*Alignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("bio: reading phylip: %w", err)
		}
		return nil, fmt.Errorf("bio: phylip: missing header")
	}
	header := strings.Fields(sc.Text())
	if len(header) < 2 {
		return nil, fmt.Errorf("bio: phylip: header %q must contain taxon and site counts", sc.Text())
	}
	ntaxa, err := strconv.Atoi(header[0])
	if err != nil {
		return nil, fmt.Errorf("bio: phylip: bad taxon count %q", header[0])
	}
	nsites, err := strconv.Atoi(header[1])
	if err != nil {
		return nil, fmt.Errorf("bio: phylip: bad site count %q", header[1])
	}
	if ntaxa <= 0 || nsites <= 0 {
		return nil, fmt.Errorf("bio: phylip: non-positive dimensions %d x %d", ntaxa, nsites)
	}

	m := NewAlignment(a)
	for t := 0; t < ntaxa; t++ {
		var name string
		var seq strings.Builder
		for seq.Len() < nsites {
			if !sc.Scan() {
				if err := sc.Err(); err != nil {
					return nil, fmt.Errorf("bio: reading phylip: %w", err)
				}
				return nil, fmt.Errorf("bio: phylip: unexpected end of file in record %d (%q)", t+1, name)
			}
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			if name == "" {
				fields := strings.Fields(text)
				name = fields[0]
				for _, f := range fields[1:] {
					seq.WriteString(f)
				}
				continue
			}
			for _, f := range strings.Fields(text) {
				seq.WriteString(f)
			}
		}
		s := seq.String()
		if len(s) != nsites {
			return nil, fmt.Errorf("bio: phylip: taxon %q has %d sites, header declares %d", name, len(s), nsites)
		}
		if err := m.AddString(name, s); err != nil {
			return nil, err
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.NumSites() != nsites || m.NumTaxa() != ntaxa {
		return nil, fmt.Errorf("bio: phylip: parsed %dx%d, header declares %dx%d",
			m.NumTaxa(), m.NumSites(), ntaxa, nsites)
	}
	return m, nil
}

// WritePhylip writes the alignment in relaxed sequential PHYLIP format.
func WritePhylip(w io.Writer, m *Alignment) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", m.NumTaxa(), m.NumSites()); err != nil {
		return err
	}
	width := 0
	for _, n := range m.Names {
		if len(n) > width {
			width = len(n)
		}
	}
	for i := range m.Seqs {
		if _, err := fmt.Fprintf(bw, "%-*s  %s\n", width, m.Names[i], m.StringSeq(i)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
