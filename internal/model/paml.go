package model

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadPAML parses an empirical amino-acid model in PAML's .dat format —
// the distribution format of WAG, LG, JTT, Dayhoff and friends: a
// lower-triangular matrix of 190 exchangeabilities (19 rows, row i
// holding i+1 values, amino acids in ARNDCQEGHILKMFPSTWYV order),
// followed by the 20 equilibrium frequencies. Whitespace (including
// line breaks within rows) is flexible; everything after the first 210
// numbers is ignored (PAML files carry trailing commentary).
//
// The repository ships no empirical matrices of its own — they are
// data, not code; drop the published .dat file next to your alignment
// and load it here (oocraxml: -m PAML -aamodel wag.dat).
func ReadPAML(r io.Reader, name string) (*Model, error) {
	var nums []float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() && len(nums) < 210 {
		for _, field := range strings.Fields(sc.Text()) {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				// PAML files may end with taxon commentary; stop at the
				// first non-number only if we already have everything.
				if len(nums) >= 210 {
					break
				}
				return nil, fmt.Errorf("model: paml: unexpected token %q after %d numbers", field, len(nums))
			}
			nums = append(nums, v)
			if len(nums) == 210 {
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("model: paml: %w", err)
	}
	if len(nums) < 210 {
		return nil, fmt.Errorf("model: paml: found %d numbers, need 190 rates + 20 frequencies", len(nums))
	}
	lower := nums[:190]
	freqs := nums[190:210]

	// The lower triangle is ordered row-wise: entry (i, j) for i > j.
	// Our NewGTR wants the upper triangle row-wise: (i, j) for i < j,
	// which by symmetry is the same set keyed the other way around.
	exch := make([]float64, 190)
	idx := 0
	for i := 1; i < 20; i++ {
		for j := 0; j < i; j++ {
			// (i, j) with i > j corresponds to upper-triangle (j, i).
			exch[upperIndex(j, i, 20)] = lower[idx]
			idx++
		}
	}
	m, err := NewGTR(freqs, exch, 20)
	if err != nil {
		return nil, fmt.Errorf("model: paml: %w", err)
	}
	if name == "" {
		name = "PAML20"
	}
	m.Name = name
	return m, nil
}

// upperIndex maps (i, j) with i < j to the row-wise upper-triangle
// position used by NewGTR.
func upperIndex(i, j, k int) int {
	// Rows before i contribute (k-1) + (k-2) + ... + (k-i) entries.
	return i*k - i*(i+1)/2 + (j - i - 1)
}
