package model

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// syntheticPAML builds a valid .dat body with distinctive rates so the
// triangle mapping can be verified entry by entry.
func syntheticPAML() (string, func(i, j int) float64, []float64) {
	rate := func(i, j int) float64 { // i < j
		return float64(i*100+j) + 0.5
	}
	var b strings.Builder
	for i := 1; i < 20; i++ {
		for j := 0; j < i; j++ {
			fmt.Fprintf(&b, "%g ", rate(j, i))
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	freqs := make([]float64, 20)
	sum := 0.0
	for i := range freqs {
		freqs[i] = float64(i + 1)
		sum += freqs[i]
	}
	for i := range freqs {
		freqs[i] /= sum
		fmt.Fprintf(&b, "%.17g ", freqs[i])
	}
	b.WriteString("\n\nSome trailing commentary like real PAML files have.\n")
	return b.String(), rate, freqs
}

func TestReadPAMLMapsTriangleCorrectly(t *testing.T) {
	body, rate, freqs := syntheticPAML()
	m, err := ReadPAML(strings.NewReader(body), "SYNTH")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "SYNTH" || m.States != 20 {
		t.Fatalf("model header wrong: %s/%d", m.Name, m.States)
	}
	// Exchangeabilities preserved in upper-triangle order.
	idx := 0
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if m.Exch[idx] != rate(i, j) {
				t.Fatalf("exch (%d,%d) = %v, want %v", i, j, m.Exch[idx], rate(i, j))
			}
			idx++
		}
	}
	// Frequencies normalised and preserved.
	for i, f := range freqs {
		if math.Abs(m.Freqs[i]-f) > 1e-9 {
			t.Fatalf("freq %d = %v, want %v", i, m.Freqs[i], f)
		}
	}
	// The resulting model is a valid reversible model: stochastic P,
	// detailed balance.
	p := make([]float64, 400)
	m.PMatrix(p, 0.3, 1)
	for i := 0; i < 20; i++ {
		row := 0.0
		for j := 0; j < 20; j++ {
			row += p[i*20+j]
			lhs := m.Freqs[i] * p[i*20+j]
			rhs := m.Freqs[j] * p[j*20+i]
			if math.Abs(lhs-rhs) > 1e-10 {
				t.Fatalf("detailed balance broken at (%d,%d)", i, j)
			}
		}
		if math.Abs(row-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, row)
		}
	}
}

func TestReadPAMLDefaults(t *testing.T) {
	body, _, _ := syntheticPAML()
	m, err := ReadPAML(strings.NewReader(body), "")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "PAML20" {
		t.Errorf("default name = %s", m.Name)
	}
}

func TestReadPAMLErrors(t *testing.T) {
	cases := []string{
		"",                       // empty
		"1 2 3",                  // far too short
		"1 2 banana 4",           // junk before completion
		strings.Repeat("1 ", 50), // still short
	}
	for _, in := range cases {
		if _, err := ReadPAML(strings.NewReader(in), "x"); err == nil {
			t.Errorf("input %q should fail", in[:min(20, len(in))])
		}
	}
	// Negative rate: rejected by NewGTR.
	body, _, _ := syntheticPAML()
	bad := strings.Replace(body, "102.5", "-1", 1)
	if _, err := ReadPAML(strings.NewReader(bad), "x"); err == nil {
		t.Error("negative rate must fail")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
