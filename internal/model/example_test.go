package model_test

import (
	"fmt"

	"oocphylo/internal/model"
)

func ExampleNewHKY() {
	m, err := model.NewHKY([]float64{0.3, 0.2, 0.2, 0.3}, 4.0)
	if err != nil {
		panic(err)
	}
	if err := m.SetGamma(0.5, 4); err != nil {
		panic(err)
	}
	fmt.Println(m.Name, "with", m.Cats(), "rate categories")
	// Transition matrix for a branch of 0.1 substitutions/site at rate 1.
	p := make([]float64, 16)
	m.PMatrix(p, 0.1, 1.0)
	fmt.Printf("P[A->A] = %.4f, P[A->G] = %.4f (transition), P[A->C] = %.4f (transversion)\n",
		p[0*4+0], p[0*4+2], p[0*4+1])
	// Output:
	// HKY85 with 4 rate categories
	// P[A->A] = 0.9172, P[A->G] = 0.0497 (transition), P[A->C] = 0.0132 (transversion)
}

func ExampleModel_SetInvariant() {
	m, _ := model.NewJC(4)
	if err := m.SetInvariant(0.25); err != nil {
		panic(err)
	}
	fmt.Printf("+I proportion: %.2f\n", m.PInv)
	// Output:
	// +I proportion: 0.25
}
