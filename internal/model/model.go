// Package model implements time-reversible Markov substitution models
// for the phylogenetic likelihood function: JC69, K80, HKY85 and GTR
// for nucleotides, the Poisson model and user-supplied general
// exchangeability matrices for amino acids, each optionally combined
// with the discrete-Gamma model of among-site rate heterogeneity
// (Yang 1994).
//
// A model exposes the eigendecomposition Q = V·diag(λ)·V⁻¹ of its
// (mean-rate-one normalised) rate matrix, from which the likelihood
// engine builds transition matrices P(rt) = V·exp(λrt)·V⁻¹ per branch
// and per rate category, and the eigen-basis sum tables behind
// analytic branch-length derivatives.
package model

import (
	"errors"
	"fmt"
	"math"

	"oocphylo/internal/linalg"
	"oocphylo/internal/mathx"
)

// Model is a reversible substitution model with discrete-Gamma rates.
// The zero value is not usable; construct via NewGTR and friends.
type Model struct {
	// Name describes the model (e.g. "GTR+G4").
	Name string
	// States is the alphabet size (4 for DNA, 20 for AA).
	States int
	// Freqs holds the equilibrium state frequencies (sum one).
	Freqs []float64
	// Eval, Evec, Ievec hold the eigendecomposition of the normalised
	// rate matrix: Q = Evec · diag(Eval) · Ievec, row-major States×States.
	Eval, Evec, Ievec []float64
	// Alpha is the Gamma shape parameter; +Inf means rate homogeneity.
	Alpha float64
	// Rates holds the Cats() discrete category rates (mean one).
	Rates []float64
	// Exch holds the upper-triangle exchangeabilities the rate matrix
	// was built from (nil for models not built via NewGTR's path).
	Exch []float64
	// PInv is the proportion of invariant sites (the +I mixture
	// component); 0 disables it. See SetInvariant.
	PInv float64

	// gen counts parameter mutations; see Version.
	gen uint64
}

// Version returns a counter that changes whenever the model's
// parameters are mutated through its setters (SetGamma,
// SetExchangeabilities, SetInvariant). Likelihood engines key their
// branch-length transition-matrix caches on it: a version mismatch
// means every cached P(rt) may describe a stale rate matrix or rate
// assignment and must be discarded.
func (m *Model) Version() uint64 { return m.gen }

// Cats returns the number of discrete rate categories (>= 1).
func (m *Model) Cats() int { return len(m.Rates) }

// ErrBadFrequencies is returned for non-positive or non-normalisable
// frequency vectors.
var ErrBadFrequencies = errors.New("model: frequencies must be positive")

// normalizeFreqs validates and rescales frequencies to sum to one.
func normalizeFreqs(freqs []float64, states int) ([]float64, error) {
	if len(freqs) != states {
		return nil, fmt.Errorf("model: %d frequencies for %d states", len(freqs), states)
	}
	sum := 0.0
	for _, f := range freqs {
		if !(f > 0) || math.IsInf(f, 0) {
			return nil, ErrBadFrequencies
		}
		sum += f
	}
	out := make([]float64, states)
	for i, f := range freqs {
		out[i] = f / sum
	}
	return out, nil
}

// NewGTR builds a general time-reversible model over `states` states
// from equilibrium frequencies and the upper-triangle exchangeability
// rates in row order ((0,1), (0,2), ..., (0,k-1), (1,2), ...); for DNA
// that is the usual AC, AG, AT, CG, CT, GT order. All rates must be
// positive. The rate matrix is normalised to one expected substitution
// per unit branch length at equilibrium.
func NewGTR(freqs, exch []float64, states int) (*Model, error) {
	pi, err := normalizeFreqs(freqs, states)
	if err != nil {
		return nil, err
	}
	want := states * (states - 1) / 2
	if len(exch) != want {
		return nil, fmt.Errorf("model: %d exchangeabilities for %d states, want %d", len(exch), states, want)
	}
	for _, r := range exch {
		if !(r > 0) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("model: exchangeabilities must be positive, got %v", r)
		}
	}
	// Build Q: q_ij = s_ij * pi_j (i != j).
	k := states
	q := make([]float64, k*k)
	idx := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			s := exch[idx]
			idx++
			q[i*k+j] = s * pi[j]
			q[j*k+i] = s * pi[i]
		}
	}
	mu := 0.0
	for i := 0; i < k; i++ {
		row := 0.0
		for j := 0; j < k; j++ {
			if j != i {
				row += q[i*k+j]
			}
		}
		q[i*k+i] = -row
		mu += pi[i] * row
	}
	if !(mu > 0) {
		return nil, errors.New("model: degenerate rate matrix")
	}
	for i := range q {
		q[i] /= mu
	}
	m := &Model{
		Name:   fmt.Sprintf("GTR%d", states),
		States: k,
		Freqs:  pi,
		Alpha:  math.Inf(1),
		Rates:  []float64{1},
		Exch:   append([]float64(nil), exch...),
	}
	if err := m.decompose(q); err != nil {
		return nil, err
	}
	return m, nil
}

// SetExchangeabilities re-parameterises the reversible rate matrix with
// new upper-triangle exchangeabilities, keeping frequencies and the
// Gamma configuration. Likelihood engines sharing this model must
// invalidate their ancestral vectors afterwards.
func (m *Model) SetExchangeabilities(exch []float64) error {
	rebuilt, err := NewGTR(m.Freqs, exch, m.States)
	if err != nil {
		return err
	}
	m.Exch = rebuilt.Exch
	m.Eval = rebuilt.Eval
	m.Evec = rebuilt.Evec
	m.Ievec = rebuilt.Ievec
	m.gen++
	return nil
}

// decompose eigendecomposes the reversible Q via the √π similarity
// transform: S = D·Q·D⁻¹ with D = diag(√π) is symmetric, S = U·Λ·Uᵀ,
// and then V = D⁻¹·U, V⁻¹ = Uᵀ·D.
func (m *Model) decompose(q []float64) error {
	k := m.States
	d := make([]float64, k)
	for i, f := range m.Freqs {
		d[i] = math.Sqrt(f)
	}
	s := make([]float64, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			s[i*k+j] = q[i*k+j] * d[i] / d[j]
		}
	}
	eval, u, err := linalg.SymmetricEigen(s, k)
	if err != nil {
		return fmt.Errorf("model: eigendecomposition failed: %w", err)
	}
	m.Eval = eval
	m.Evec = make([]float64, k*k)
	m.Ievec = make([]float64, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			m.Evec[i*k+j] = u[i*k+j] / d[i]
			m.Ievec[i*k+j] = u[j*k+i] * d[j]
		}
	}
	return nil
}

// NewJC returns the Jukes-Cantor model generalised to `states` states
// (equal frequencies, equal exchangeabilities). For states == 20 this
// is the Poisson amino-acid model.
func NewJC(states int) (*Model, error) {
	if states < 2 {
		return nil, fmt.Errorf("model: need at least 2 states, got %d", states)
	}
	freqs := make([]float64, states)
	for i := range freqs {
		freqs[i] = 1 / float64(states)
	}
	exch := make([]float64, states*(states-1)/2)
	for i := range exch {
		exch[i] = 1
	}
	m, err := NewGTR(freqs, exch, states)
	if err != nil {
		return nil, err
	}
	if states == 4 {
		m.Name = "JC69"
	} else {
		m.Name = fmt.Sprintf("Poisson%d", states)
	}
	return m, nil
}

// NewK80 returns the Kimura two-parameter DNA model with
// transition/transversion ratio kappa (equal base frequencies).
func NewK80(kappa float64) (*Model, error) {
	return newHKYLike([]float64{0.25, 0.25, 0.25, 0.25}, kappa, "K80")
}

// NewHKY returns the HKY85 DNA model with the given base frequencies
// (order A, C, G, T) and transition/transversion ratio kappa.
func NewHKY(freqs []float64, kappa float64) (*Model, error) {
	return newHKYLike(freqs, kappa, "HKY85")
}

func newHKYLike(freqs []float64, kappa float64, name string) (*Model, error) {
	if !(kappa > 0) {
		return nil, fmt.Errorf("model: kappa must be positive, got %v", kappa)
	}
	// Exchangeability order AC, AG, AT, CG, CT, GT; transitions are
	// A<->G and C<->T.
	exch := []float64{1, kappa, 1, 1, kappa, 1}
	m, err := NewGTR(freqs, exch, 4)
	if err != nil {
		return nil, err
	}
	m.Name = name
	return m, nil
}

// SetGamma installs a discrete-Gamma rate heterogeneity model with the
// given shape alpha and category count. ncat == 1 restores homogeneity.
// alpha == +Inf is the α→∞ limit of the Gamma: every category rate is
// exactly 1 (rate homogeneity spread over ncat categories), a state
// the checkpoint layer round-trips explicitly.
func (m *Model) SetGamma(alpha float64, ncat int) error {
	if ncat < 1 {
		return fmt.Errorf("model: gamma categories %d < 1", ncat)
	}
	if math.IsInf(alpha, 1) {
		rates := make([]float64, ncat)
		for i := range rates {
			rates[i] = 1
		}
		m.Alpha = alpha
		m.Rates = rates
		m.gen++
		return nil
	}
	rates, err := mathx.DiscreteGammaRates(alpha, ncat, false)
	if err != nil {
		return err
	}
	m.Alpha = alpha
	m.Rates = rates
	m.gen++
	return nil
}

// SetInvariant sets the proportion of invariant sites p in [0, 1): the
// site likelihood becomes (1-p)·L_Γ + p·L_inv, where L_inv is the
// equilibrium probability of the pattern being constant. The discrete
// rates keep mean one over the variable component (RAxML's convention);
// p = 0 disables the mixture.
func (m *Model) SetInvariant(p float64) error {
	if p < 0 || p >= 1 || math.IsNaN(p) {
		return fmt.Errorf("model: invariant proportion %v outside [0, 1)", p)
	}
	m.PInv = p
	m.gen++
	return nil
}

// PMatrix fills dst (len >= States*States) with the transition matrix
// P(rate * t) = V·exp(Λ·rate·t)·V⁻¹ for branch length t and rate
// multiplier rate.
func (m *Model) PMatrix(dst []float64, t, rate float64) {
	k := m.States
	rt := t * rate
	// tmp = V * diag(exp(lambda * rt)) folded into the multiply.
	for i := 0; i < k; i++ {
		di := dst[i*k : (i+1)*k]
		for j := range di {
			di[j] = 0
		}
		for l := 0; l < k; l++ {
			w := m.Evec[i*k+l] * math.Exp(m.Eval[l]*rt)
			if w == 0 {
				continue
			}
			iv := m.Ievec[l*k : (l+1)*k]
			for j := 0; j < k; j++ {
				di[j] += w * iv[j]
			}
		}
		// Clamp tiny negative round-off; probabilities must be >= 0.
		for j := range di {
			if di[j] < 0 {
				di[j] = 0
			}
		}
	}
}

// PMatrices fills dst (len >= Cats()*States*States) with one transition
// matrix per rate category for branch length t, category-major.
func (m *Model) PMatrices(dst []float64, t float64) {
	k2 := m.States * m.States
	for c, r := range m.Rates {
		m.PMatrix(dst[c*k2:(c+1)*k2], t, r)
	}
}

// Clone returns an independent copy of the model (safe to mutate the
// Gamma parameters of one without affecting the other).
func (m *Model) Clone() *Model {
	c := *m
	c.Freqs = append([]float64(nil), m.Freqs...)
	c.Eval = append([]float64(nil), m.Eval...)
	c.Evec = append([]float64(nil), m.Evec...)
	c.Ievec = append([]float64(nil), m.Ievec...)
	c.Rates = append([]float64(nil), m.Rates...)
	c.Exch = append([]float64(nil), m.Exch...)
	return &c
}
