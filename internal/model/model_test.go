package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJCAnalyticTransitionProbabilities(t *testing.T) {
	m, err := NewJC(4)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 16)
	for _, bt := range []float64{0.01, 0.1, 0.5, 1.0, 5.0} {
		m.PMatrix(p, bt, 1)
		same := 0.25 + 0.75*math.Exp(-4*bt/3)
		diff := 0.25 - 0.25*math.Exp(-4*bt/3)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := diff
				if i == j {
					want = same
				}
				if math.Abs(p[i*4+j]-want) > 1e-10 {
					t.Fatalf("t=%v: P[%d][%d] = %v, want %v", bt, i, j, p[i*4+j], want)
				}
			}
		}
	}
}

func TestK80AnalyticTransitionProbabilities(t *testing.T) {
	kappa := 4.0
	m, err := NewK80(kappa)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic K80 with rate matrix normalised to mean rate one:
	// using beta = 1/(kappa+2), transversions rate beta, transitions kappa*beta.
	p := make([]float64, 16)
	bt := 0.3
	m.PMatrix(p, bt, 1)
	beta := 1 / (kappa + 2)
	e1 := math.Exp(-4 * beta * bt)
	e2 := math.Exp(-2 * beta * (kappa + 1) * bt)
	same := 0.25 + 0.25*e1 + 0.5*e2
	transition := 0.25 + 0.25*e1 - 0.5*e2
	transversion := 0.25 - 0.25*e1
	// Order A,C,G,T: A->G is a transition; A->C, A->T transversions.
	if math.Abs(p[0*4+0]-same) > 1e-10 {
		t.Errorf("P[A][A] = %v, want %v", p[0], same)
	}
	if math.Abs(p[0*4+2]-transition) > 1e-10 {
		t.Errorf("P[A][G] = %v, want %v", p[2], transition)
	}
	if math.Abs(p[0*4+1]-transversion) > 1e-10 {
		t.Errorf("P[A][C] = %v, want %v", p[1], transversion)
	}
	if math.Abs(p[0*4+3]-transversion) > 1e-10 {
		t.Errorf("P[A][T] = %v, want %v", p[3], transversion)
	}
}

func randomGTR(t *testing.T, rng *rand.Rand, states int) *Model {
	t.Helper()
	freqs := make([]float64, states)
	for i := range freqs {
		freqs[i] = 0.05 + rng.Float64()
	}
	exch := make([]float64, states*(states-1)/2)
	for i := range exch {
		exch[i] = 0.1 + 3*rng.Float64()
	}
	m, err := NewGTR(freqs, exch, states)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPMatrixStochasticity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, states := range []int{4, 20} {
		m := randomGTR(t, rng, states)
		p := make([]float64, states*states)
		for _, bt := range []float64{1e-6, 0.01, 0.3, 2, 50} {
			m.PMatrix(p, bt, 1)
			for i := 0; i < states; i++ {
				row := 0.0
				for j := 0; j < states; j++ {
					if p[i*states+j] < 0 {
						t.Fatalf("negative probability at t=%v", bt)
					}
					row += p[i*states+j]
				}
				if math.Abs(row-1) > 1e-9 {
					t.Fatalf("states=%d t=%v: row %d sums to %v", states, bt, i, row)
				}
			}
		}
	}
}

func TestPMatrixLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomGTR(t, rng, 4)
	p := make([]float64, 16)
	// P(0) = I.
	m.PMatrix(p, 0, 1)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(p[i*4+j]-want) > 1e-12 {
				t.Fatalf("P(0) != I at (%d,%d): %v", i, j, p[i*4+j])
			}
		}
	}
	// P(inf) rows converge to the equilibrium frequencies.
	m.PMatrix(p, 500, 1)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(p[i*4+j]-m.Freqs[j]) > 1e-9 {
				t.Fatalf("P(inf) row %d does not match freqs: %v vs %v", i, p[i*4+j], m.Freqs[j])
			}
		}
	}
}

func TestDetailedBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomGTR(t, rng, 4)
	p := make([]float64, 16)
	m.PMatrix(p, 0.7, 1)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			lhs := m.Freqs[i] * p[i*4+j]
			rhs := m.Freqs[j] * p[j*4+i]
			if math.Abs(lhs-rhs) > 1e-12 {
				t.Fatalf("detailed balance broken at (%d,%d): %v vs %v", i, j, lhs, rhs)
			}
		}
	}
}

func TestChapmanKolmogorovProperty(t *testing.T) {
	// P(s)·P(t) = P(s+t) for any reversible model.
	f := func(seed int64, sRaw, tRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomGTRQuick(rng, 4)
		if m == nil {
			return true
		}
		s := math.Abs(math.Mod(sRaw, 2)) + 0.001
		u := math.Abs(math.Mod(tRaw, 2)) + 0.001
		ps := make([]float64, 16)
		pt := make([]float64, 16)
		pst := make([]float64, 16)
		m.PMatrix(ps, s, 1)
		m.PMatrix(pt, u, 1)
		m.PMatrix(pst, s+u, 1)
		prod := make([]float64, 16)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				acc := 0.0
				for k := 0; k < 4; k++ {
					acc += ps[i*4+k] * pt[k*4+j]
				}
				prod[i*4+j] = acc
			}
		}
		for i := range prod {
			if math.Abs(prod[i]-pst[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func randomGTRQuick(rng *rand.Rand, states int) *Model {
	freqs := make([]float64, states)
	for i := range freqs {
		freqs[i] = 0.05 + rng.Float64()
	}
	exch := make([]float64, states*(states-1)/2)
	for i := range exch {
		exch[i] = 0.1 + 3*rng.Float64()
	}
	m, err := NewGTR(freqs, exch, states)
	if err != nil {
		return nil
	}
	return m
}

func TestMeanRateNormalisation(t *testing.T) {
	// For small t, P_ii(t) ~ 1 - q_i t and sum_i pi_i q_i = 1.
	rng := rand.New(rand.NewSource(5))
	for _, states := range []int{4, 20} {
		m := randomGTR(t, rng, states)
		p := make([]float64, states*states)
		const dt = 1e-7
		m.PMatrix(p, dt, 1)
		rate := 0.0
		for i := 0; i < states; i++ {
			rate += m.Freqs[i] * (1 - p[i*states+i])
		}
		rate /= dt
		if math.Abs(rate-1) > 1e-4 {
			t.Errorf("states=%d: mean rate %v, want 1", states, rate)
		}
	}
}

func TestSetGamma(t *testing.T) {
	m, err := NewJC(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cats() != 1 {
		t.Fatal("fresh model should be rate-homogeneous")
	}
	if err := m.SetGamma(0.5, 4); err != nil {
		t.Fatal(err)
	}
	if m.Cats() != 4 || m.Alpha != 0.5 {
		t.Fatal("SetGamma did not install categories")
	}
	mean := 0.0
	for _, r := range m.Rates {
		mean += r
	}
	if math.Abs(mean/4-1) > 1e-9 {
		t.Errorf("category rates mean %v, want 1", mean/4)
	}
	if err := m.SetGamma(-1, 4); err == nil {
		t.Error("negative alpha must error")
	}
	// PMatrices emits one stochastic matrix per category.
	ps := make([]float64, 4*16)
	m.PMatrices(ps, 0.2)
	for c := 0; c < 4; c++ {
		for i := 0; i < 4; i++ {
			row := 0.0
			for j := 0; j < 4; j++ {
				row += ps[c*16+i*4+j]
			}
			if math.Abs(row-1) > 1e-9 {
				t.Fatalf("category %d row %d sums to %v", c, i, row)
			}
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewGTR([]float64{1, 1, 1}, []float64{1, 1, 1, 1, 1, 1}, 4); err == nil {
		t.Error("wrong frequency count must error")
	}
	if _, err := NewGTR([]float64{1, -1, 1, 1}, []float64{1, 1, 1, 1, 1, 1}, 4); err == nil {
		t.Error("negative frequency must error")
	}
	if _, err := NewGTR([]float64{1, 1, 1, 1}, []float64{1, 1, 1}, 4); err == nil {
		t.Error("wrong exchangeability count must error")
	}
	if _, err := NewGTR([]float64{1, 1, 1, 1}, []float64{1, 1, 1, 1, 1, 0}, 4); err == nil {
		t.Error("zero exchangeability must error")
	}
	if _, err := NewJC(1); err == nil {
		t.Error("one state must error")
	}
	if _, err := NewK80(0); err == nil {
		t.Error("kappa=0 must error")
	}
	if _, err := NewHKY([]float64{0.1, 0.2, 0.3, 0.4}, -2); err == nil {
		t.Error("negative kappa must error")
	}
}

func TestFrequenciesAreNormalised(t *testing.T) {
	m, err := NewGTR([]float64{2, 2, 2, 2}, []float64{1, 1, 1, 1, 1, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Freqs {
		if math.Abs(f-0.25) > 1e-12 {
			t.Errorf("frequency %v, want 0.25", f)
		}
	}
}

func TestClone(t *testing.T) {
	m, err := NewHKY([]float64{0.3, 0.2, 0.2, 0.3}, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	_ = m.SetGamma(1.0, 4)
	c := m.Clone()
	_ = c.SetGamma(0.2, 8)
	if m.Cats() != 4 || c.Cats() != 8 {
		t.Error("clone shares gamma state")
	}
	c.Freqs[0] = 0.9
	if m.Freqs[0] == 0.9 {
		t.Error("clone shares frequency storage")
	}
}

func TestPoissonAAName(t *testing.T) {
	m, err := NewJC(20)
	if err != nil {
		t.Fatal(err)
	}
	if m.States != 20 || m.Name != "Poisson20" {
		t.Errorf("AA Poisson model mislabeled: %s/%d", m.Name, m.States)
	}
}

func BenchmarkPMatrixDNA(b *testing.B) {
	m, _ := NewJC(4)
	p := make([]float64, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.PMatrix(p, 0.1, 1)
	}
}

func BenchmarkPMatricesDNAGamma4(b *testing.B) {
	m, _ := NewJC(4)
	_ = m.SetGamma(0.7, 4)
	p := make([]float64, 4*16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.PMatrices(p, 0.1)
	}
}

func BenchmarkPMatrixAA(b *testing.B) {
	m, _ := NewJC(20)
	p := make([]float64, 400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.PMatrix(p, 0.1, 1)
	}
}
