// Strategies: run the identical tree-search workload under each of the
// paper's four replacement strategies (Random, LRU, LFU, Topological)
// at several memory fractions, and print the miss-rate comparison of
// Figure 2 — including the determinism check that every configuration
// returns exactly the same likelihood.
package main

import (
	"fmt"
	"log"
	"os"

	"oocphylo/internal/experiments"
)

func main() {
	cfg := experiments.SearchWorkloadConfig{
		Taxa:  96,
		Sites: 150,
		Seed:  11,
	}
	fmt.Println("running the search workload under 4 strategies x 3 memory fractions...")
	results, err := experiments.RunFigure2(cfg, []float64{0.25, 0.5, 0.75}, false)
	if err != nil {
		log.Fatal(err)
	}
	experiments.WriteMissRateTable(os.Stdout, results,
		fmt.Sprintf("miss rates, %d-taxon search workload", cfg.Taxa))

	for _, r := range results[1:] {
		if r.LnL != results[0].LnL {
			log.Fatalf("determinism violated: %s f=%v returned %v, expected %v",
				r.Strategy, r.F, r.LnL, results[0].LnL)
		}
	}
	fmt.Println("\nall configurations returned the identical log likelihood — the")
	fmt.Println("out-of-core machinery is transparent to the search (paper §4.1).")
}
