// Quickstart: simulate a small DNA alignment, run a Maximum-Likelihood
// tree search entirely in RAM (the standard configuration), and print
// the resulting tree — the five-minute tour of the library's core API:
// sim (data), tree (topologies), model (substitution models),
// plf (the likelihood engine) and search (the ML hill climb).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"oocphylo/internal/plf"
	"oocphylo/internal/search"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

func main() {
	// 1. A reproducible simulated dataset: 16 taxa, 500 sites, HKY+Γ4.
	dataset, err := sim.NewDataset(sim.Config{
		Taxa: 16, Sites: 500, GammaAlpha: 0.8, Seed: 2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d taxa x %d sites (%d unique patterns)\n",
		dataset.Patterns.NumTaxa(), dataset.Patterns.TotalSites(), dataset.Patterns.NumPatterns())

	// 2. A random starting topology over the same taxa.
	start, err := tree.RandomTopology(dataset.Patterns.Names,
		rand.New(rand.NewSource(1)), 0.05, 0.15)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The likelihood engine over plain in-RAM vector storage.
	vecLen := plf.VectorLength(dataset.Model, dataset.Patterns.NumPatterns())
	provider := plf.NewInMemoryProvider(start.NumInner(), vecLen)
	engine, err := plf.New(start, dataset.Patterns, dataset.Model, provider)
	if err != nil {
		log.Fatal(err)
	}
	initial, err := engine.LogLikelihood()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("starting tree log likelihood: %.2f\n", initial)

	// 4. Lazy-SPR hill climbing with branch-length and alpha optimisation.
	result, err := search.New(engine, search.Options{
		SPRRadius:     6,
		MaxRounds:     8,
		OptimizeModel: true,
	}).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final log likelihood:         %.2f (alpha = %.3f)\n", result.LnL, result.Alpha)
	fmt.Printf("accepted %d of %d tested SPR moves in %d rounds\n",
		result.AcceptedMoves, result.TestedMoves, result.Rounds)
	fmt.Printf("distance to the true topology: RF = %d\n", tree.RFDistance(engine.T, dataset.Tree))
	fmt.Println(tree.WriteNewick(engine.T))
}
