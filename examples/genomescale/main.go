// Genomescale: analyse an alignment whose ancestral probability vectors
// do not fit in the memory budget, by running the likelihood engine
// over the out-of-core manager with a real backing file — the paper's
// headline use case ("infer trees on datasets of arbitrary size", §5).
//
// The memory budget is enforced exactly: only budget/vectorSize slot
// buffers are allocated; everything else lives in one binary file and
// is swapped in on demand, pinned while in use, with read skipping
// eliding reads of vectors about to be overwritten.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/search"
	"oocphylo/internal/sim"
)

func main() {
	// A deliberately wide alignment: 48 taxa x 20 kb, DNA with Γ4 rates.
	// Each ancestral vector is nPatterns*4*4 doubles — tens of MB total.
	dataset, err := sim.NewDataset(sim.Config{
		Taxa: 48, Sites: 20000, GammaAlpha: 0.7, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	t := dataset.Tree.Clone() // fixed, known topology: evaluate mode
	n := t.NumInner()
	vecLen := plf.VectorLength(dataset.Model, dataset.Patterns.NumPatterns())
	vecBytes := int64(vecLen) * 8
	total := int64(n) * vecBytes

	// Budget: a quarter of what the vectors need (the paper's f = 0.25).
	budget := total / 4
	slots := int(budget / vecBytes)
	fmt.Printf("ancestral vectors: %d x %.2f MiB = %.2f MiB required\n",
		n, float64(vecBytes)/(1<<20), float64(total)/(1<<20))
	fmt.Printf("budget: %.2f MiB -> %d RAM slots (f = %.2f)\n",
		float64(budget)/(1<<20), slots, float64(slots)/float64(n))

	dir, err := os.MkdirTemp("", "genomescale")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := ooc.NewFileStore(filepath.Join(dir, "vectors.bin"), n, vecLen)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	manager, err := ooc.NewManager(ooc.Config{
		NumVectors:   n,
		VectorLen:    vecLen,
		Slots:        slots,
		Strategy:     ooc.NewLRU(n),
		ReadSkipping: true,
		Store:        store,
	})
	if err != nil {
		log.Fatal(err)
	}

	engine, err := plf.New(t, dataset.Patterns, dataset.Model, manager)
	if err != nil {
		log.Fatal(err)
	}

	// Optimise branch lengths and the Gamma shape on the fixed topology.
	s := search.New(engine, search.Options{})
	lnl, err := s.SmoothBranches(4, 1e-2)
	if err != nil {
		log.Fatal(err)
	}
	alpha, lnl2, err := s.OptimizeAlpha()
	if err != nil {
		log.Fatal(err)
	}
	if lnl2 > lnl {
		lnl = lnl2
	}
	fmt.Printf("log likelihood: %.2f   (alpha = %.3f, truth 0.7)\n", lnl, alpha)

	st := manager.Stats()
	fmt.Printf("vector requests: %d, misses: %d (%.2f%%)\n",
		st.Requests, st.Misses, 100*st.MissRate())
	fmt.Printf("file reads: %d (%.2f%% of requests; %d skipped by write-intent)\n",
		st.Reads, 100*st.ReadRate(), st.SkippedReads)
	fmt.Printf("file traffic: %.2f MiB read, %.2f MiB written\n",
		float64(st.BytesRead)/(1<<20), float64(st.BytesWritten)/(1<<20))
}
