// Readskip: quantify the read-skipping optimisation (paper §3.4). The
// same workloads run twice — with and without read skipping — and the
// example reports how many file reads the write-intent declaration
// eliminates, separately for full tree traversals (every vector's first
// access is a write: nearly all reads vanish) and for a branch-smoothing
// workload (a mix of reads and writes, where the paper reports >50% of
// reads eliminated).
//
// A final section re-runs the traversal workload with the asynchronous
// I/O pipeline (paper §5 future work) and shows that moving the same
// reads and write-backs onto background goroutines leaves the
// likelihood and every miss counter untouched.
package main

import (
	"fmt"
	"log"

	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/search"
	"oocphylo/internal/sim"
)

func run(skip, prefetch, async bool, workload string) (ooc.Stats, ooc.PipelineStats, float64) {
	dataset, err := sim.NewDataset(sim.Config{Taxa: 64, Sites: 400, GammaAlpha: 0.9, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	t := dataset.Tree.Clone()
	n := t.NumInner()
	vecLen := plf.VectorLength(dataset.Model, dataset.Patterns.NumPatterns())
	manager, err := ooc.NewManager(ooc.Config{
		NumVectors:   n,
		VectorLen:    vecLen,
		Slots:        ooc.SlotsForFraction(0.25, n),
		Strategy:     ooc.NewLRU(n),
		ReadSkipping: skip,
		Store:        ooc.NewMemStore(n, vecLen),
		Async:        async,
	})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := plf.New(t, dataset.Patterns, dataset.Model, manager)
	if err != nil {
		log.Fatal(err)
	}
	if prefetch {
		engine.EnablePrefetch(true)
		engine.SetPrefetchDepth(2)
	}
	var lnl float64
	switch workload {
	case "traversals":
		for i := 0; i < 5; i++ {
			if err := engine.FullTraversal(t.Edges[0]); err != nil {
				log.Fatal(err)
			}
			if lnl, err = engine.LogLikelihoodAt(t.Edges[0]); err != nil {
				log.Fatal(err)
			}
		}
	case "smoothing":
		if lnl, err = search.New(engine, search.Options{}).SmoothBranches(3, 1e-3); err != nil {
			log.Fatal(err)
		}
	}
	if err := manager.Close(); err != nil {
		log.Fatal(err)
	}
	return manager.Stats(), manager.PipelineStats(), lnl
}

func main() {
	for _, workload := range []string{"traversals", "smoothing"} {
		plain, _, lnlA := run(false, false, false, workload)
		skipped, _, lnlB := run(true, false, false, workload)
		if lnlA != lnlB {
			log.Fatalf("%s: read skipping changed the likelihood (%v vs %v)!", workload, lnlA, lnlB)
		}
		fmt.Printf("%-11s  requests %6d  misses %5d (%.2f%%)\n",
			workload, plain.Requests, plain.Misses, 100*plain.MissRate())
		fmt.Printf("             reads without skipping: %5d (%.2f%% of requests)\n",
			plain.Reads, 100*plain.ReadRate())
		fmt.Printf("             reads with    skipping: %5d (%.2f%% of requests)\n",
			skipped.Reads, 100*skipped.ReadRate())
		saved := plain.Reads - skipped.Reads
		fmt.Printf("             reads eliminated: %d of %d (%.1f%%), lnL unchanged (%.2f)\n\n",
			saved, plain.Reads, 100*float64(saved)/float64(plain.Reads), lnlA)
	}

	// Async pipeline: same traversal workload with plan-driven prefetch,
	// I/O on background goroutines in the second run. The decisions stay
	// on the compute thread either way, so the counters and the
	// likelihood must not move at all.
	syncStats, _, lnlSync := run(true, true, false, "traversals")
	asyncStats, pipe, lnlAsync := run(true, true, true, "traversals")
	if lnlSync != lnlAsync {
		log.Fatalf("async pipeline changed the likelihood (%v vs %v)!", lnlSync, lnlAsync)
	}
	if syncStats != asyncStats {
		log.Fatalf("async pipeline changed the manager counters!\n sync %+v\nasync %+v", syncStats, asyncStats)
	}
	fmt.Printf("async        %d fetches + %d writes moved to background goroutines\n",
		pipe.FetchesQueued, pipe.WritesQueued)
	fmt.Printf("             counters identical, lnL unchanged (%.2f)\n", lnlAsync)
}
