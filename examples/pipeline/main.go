// Pipeline: the complete analysis workflow a systematist would run,
// end to end — model selection, starting-tree construction, ML search
// under a memory budget, and bootstrap support — all against the
// out-of-core vector manager.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"oocphylo/internal/bio"
	"oocphylo/internal/bootstrap"
	"oocphylo/internal/model"
	"oocphylo/internal/modelsel"
	"oocphylo/internal/ooc"
	"oocphylo/internal/parsimony"
	"oocphylo/internal/plf"
	"oocphylo/internal/search"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

func main() {
	// 0. Data: 20 taxa x 1200 sites simulated under HKY+Γ.
	dataset, err := sim.NewDataset(sim.Config{Taxa: 20, Sites: 1200, GammaAlpha: 0.6, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	pats := dataset.Patterns
	fmt.Printf("data: %d taxa x %d sites (%d patterns)\n\n",
		pats.NumTaxa(), pats.TotalSites(), pats.NumPatterns())

	// 1. Model selection on an NJ topology.
	fmt.Println("== step 1: model selection (AIC) ==")
	fits, err := modelsel.EvaluateDNA(pats, modelsel.Options{Gamma: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range fits[:3] {
		fmt.Printf("  %-10s lnL %10.2f  AIC %10.2f\n", f.Name, f.LnL, f.AIC)
	}
	best := fits[0]
	fmt.Printf("  selected: %s\n\n", best.Name)

	// 2. Build the selected model and a parsimony starting tree.
	m, err := model.NewHKY(pats.BaseFrequencies(), 2.0)
	if err != nil {
		log.Fatal(err)
	}
	if !math.IsNaN(best.Alpha) {
		if err := m.SetGamma(best.Alpha, 4); err != nil {
			log.Fatal(err)
		}
	}
	start, err := parsimony.StepwiseAddition(pats, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== step 2: parsimony starting tree built ==")

	// 3. ML search with ancestral vectors under a hard memory budget.
	vecLen := plf.VectorLength(m, pats.NumPatterns())
	n := start.NumInner()
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors:   n,
		VectorLen:    vecLen,
		Slots:        ooc.SlotsForFraction(0.25, n),
		Strategy:     ooc.NewLRU(n),
		ReadSkipping: true,
		Store:        ooc.NewMemStore(n, vecLen),
	})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := plf.New(start, pats, m, mgr)
	if err != nil {
		log.Fatal(err)
	}
	res, err := search.New(engine, search.Options{
		SPRRadius: 6, MaxRounds: 6, OptimizeModel: m.Cats() > 1,
	}).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== step 3: ML search (25%% of vectors in RAM) ==\n")
	fmt.Printf("  lnL %.2f after %d rounds (miss rate %.2f%%)\n",
		res.LnL, res.Rounds, 100*mgr.Stats().MissRate())
	fmt.Printf("  distance to generating topology: RF = %d\n\n",
		tree.RFDistance(engine.T, dataset.Tree))

	// 4. Bootstrap support for the ML tree.
	fmt.Println("== step 4: bootstrap (20 replicates) ==")
	infer := func(rep int, sample *bio.Patterns) (*tree.Tree, error) {
		st, err := parsimony.StepwiseAddition(sample, rand.New(rand.NewSource(int64(rep))))
		if err != nil {
			return nil, err
		}
		e, err := plf.New(st, sample, m.Clone(),
			plf.NewInMemoryProvider(st.NumInner(), plf.VectorLength(m, sample.NumPatterns())))
		if err != nil {
			return nil, err
		}
		if _, err := search.New(e, search.Options{SPRRadius: 4, MaxRounds: 1}).Run(); err != nil {
			return nil, err
		}
		return e.T, nil
	}
	reps, err := bootstrap.Run(pats, 20, 7, infer)
	if err != nil {
		log.Fatal(err)
	}
	sup, err := bootstrap.Support(engine.T, reps)
	if err != nil {
		log.Fatal(err)
	}
	mean, minS := 0.0, 1.0
	for _, s := range sup {
		mean += s
		if s < minS {
			minS = s
		}
	}
	mean /= float64(len(sup))
	fmt.Printf("  mean support %.0f%%, weakest split %.0f%%\n\n", 100*mean, 100*minS)
	fmt.Println(bootstrap.NewickWithSupport(engine.T, sup))
}
